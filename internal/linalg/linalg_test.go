package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"v2v/internal/xrand"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v", got)
	}
	if got := Dot(nil, nil); got != 0 {
		t.Fatalf("empty Dot = %v", got)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestAxpyScaleNorm(t *testing.T) {
	y := []float64{1, 1}
	Axpy(2, []float64{3, 4}, y)
	if y[0] != 7 || y[1] != 9 {
		t.Fatalf("Axpy result %v", y)
	}
	Scale(0.5, y)
	if y[0] != 3.5 || y[1] != 4.5 {
		t.Fatalf("Scale result %v", y)
	}
	if got := Norm2([]float64{3, 4}); got != 5 {
		t.Fatalf("Norm2 = %v", got)
	}
}

func TestNormalize(t *testing.T) {
	x := []float64{3, 4}
	n := Normalize(x)
	if n != 5 {
		t.Fatalf("returned norm %v", n)
	}
	if !almostEq(Norm2(x), 1, 1e-12) {
		t.Fatalf("normalized norm %v", Norm2(x))
	}
	z := []float64{0, 0}
	if Normalize(z) != 0 || z[0] != 0 {
		t.Fatal("zero vector should be unchanged")
	}
}

func TestDistances(t *testing.T) {
	a, b := []float64{0, 0}, []float64{3, 4}
	if got := SquaredDistance(a, b); got != 25 {
		t.Fatalf("SquaredDistance = %v", got)
	}
	if got := EuclideanDistance(a, b); got != 5 {
		t.Fatalf("EuclideanDistance = %v", got)
	}
}

func TestMean(t *testing.T) {
	m := Mean([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m[0] != 3 || m[1] != 4 {
		t.Fatalf("Mean = %v", m)
	}
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Fatal("Set/At broken")
	}
	if len(m.Row(1)) != 3 || m.Row(1)[2] != 5 {
		t.Fatal("Row broken")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) == 9 {
		t.Fatal("Clone aliases")
	}
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(2, 1) != 5 {
		t.Fatal("transpose broken")
	}
}

func TestMatrixMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := a.Mul(b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("Mul[%d][%d] = %v", i, j, c.At(i, j))
			}
		}
	}
	y := a.MulVec([]float64{1, 1})
	if y[0] != 3 || y[1] != 7 {
		t.Fatalf("MulVec = %v", y)
	}
}

func TestCovarianceDiagonal(t *testing.T) {
	// Two independent coordinates with known variances.
	rows := [][]float64{{1, 10}, {2, 10}, {3, 10}}
	cov := Covariance(rows)
	if !almostEq(cov.At(0, 0), 1, 1e-12) {
		t.Fatalf("var x = %v, want 1", cov.At(0, 0))
	}
	if !almostEq(cov.At(1, 1), 0, 1e-12) {
		t.Fatalf("var y = %v, want 0", cov.At(1, 1))
	}
	if !almostEq(cov.At(0, 1), 0, 1e-12) {
		t.Fatalf("cov xy = %v, want 0", cov.At(0, 1))
	}
}

func TestJacobiEigenKnown(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1 with vectors (1,1)/sqrt2,
	// (1,-1)/sqrt2.
	a := FromRows([][]float64{{2, 1}, {1, 2}})
	vals, vecs, err := JacobiEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(vals[0], 3, 1e-10) || !almostEq(vals[1], 1, 1e-10) {
		t.Fatalf("eigenvalues %v", vals)
	}
	v0 := vecs.Row(0)
	if !almostEq(math.Abs(v0[0]), math.Sqrt2/2, 1e-8) || !almostEq(math.Abs(v0[1]), math.Sqrt2/2, 1e-8) {
		t.Fatalf("eigenvector 0 = %v", v0)
	}
}

func TestJacobiEigenDiagonal(t *testing.T) {
	a := FromRows([][]float64{{5, 0, 0}, {0, -2, 0}, {0, 0, 1}})
	vals, _, err := JacobiEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 1, -2}
	for i := range want {
		if !almostEq(vals[i], want[i], 1e-12) {
			t.Fatalf("vals = %v", vals)
		}
	}
}

func TestJacobiEigenRejectsNonSquareAndAsymmetric(t *testing.T) {
	if _, _, err := JacobiEigen(NewMatrix(2, 3)); err == nil {
		t.Error("non-square accepted")
	}
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	if _, _, err := JacobiEigen(a); err == nil {
		t.Error("asymmetric accepted")
	}
}

// Property: for random symmetric matrices, A v = lambda v for every
// returned pair, and eigenvalues are sorted decreasing.
func TestJacobiEigenProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		d := 2 + rng.Intn(6)
		a := NewMatrix(d, d)
		for i := 0; i < d; i++ {
			for j := i; j < d; j++ {
				v := rng.NormFloat64()
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		vals, vecs, err := JacobiEigen(a)
		if err != nil {
			return false
		}
		for i := 1; i < d; i++ {
			if vals[i] > vals[i-1]+1e-9 {
				return false
			}
		}
		for i := 0; i < d; i++ {
			av := a.MulVec(vecs.Row(i))
			for j := 0; j < d; j++ {
				if math.Abs(av[j]-vals[i]*vecs.Row(i)[j]) > 1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTopEigenpairsMatchesJacobi(t *testing.T) {
	rng := xrand.New(8)
	d := 12
	// Random symmetric PSD matrix M = B^T B.
	b := NewMatrix(d, d)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	m := b.T().Mul(b)
	apply := func(dst, x []float64) { copy(dst, m.MulVec(x)) }
	vals, vecs, err := TopEigenpairs(d, 3, apply, 3)
	if err != nil {
		t.Fatal(err)
	}
	exactVals, _, err := JacobiEigen(m)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if !almostEq(vals[i], exactVals[i], 1e-6*math.Abs(exactVals[i])+1e-6) {
			t.Fatalf("eigenvalue %d: subspace %v vs jacobi %v", i, vals[i], exactVals[i])
		}
		// Residual check: ||A v - lambda v|| small.
		av := m.MulVec(vecs.Row(i))
		Axpy(-vals[i], vecs.Row(i), av)
		if Norm2(av) > 1e-5*math.Abs(vals[i])+1e-5 {
			t.Fatalf("eigenpair %d residual %v", i, Norm2(av))
		}
	}
}

func TestTopEigenpairsValidation(t *testing.T) {
	apply := func(dst, x []float64) { copy(dst, x) }
	if _, _, err := TopEigenpairs(4, 0, apply, 1); err == nil {
		t.Error("k=0 accepted")
	}
	if _, _, err := TopEigenpairs(4, 5, apply, 1); err == nil {
		t.Error("k>d accepted")
	}
}

func TestFitPCAKnownStructure(t *testing.T) {
	// Points stretched along the x axis with tiny y noise: first
	// component must align with x.
	rng := xrand.New(14)
	rows := make([][]float64, 200)
	for i := range rows {
		rows[i] = []float64{rng.NormFloat64() * 10, rng.NormFloat64() * 0.1, 0}
	}
	p, err := FitPCA(rows, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	c0 := p.Components.Row(0)
	if math.Abs(c0[0]) < 0.99 {
		t.Fatalf("first component not aligned with x: %v", c0)
	}
	if p.Variances[0] < 50 || p.Variances[0] > 200 {
		t.Fatalf("first variance %v, want ~100", p.Variances[0])
	}
	if p.Variances[1] > 1 {
		t.Fatalf("second variance %v, want tiny", p.Variances[1])
	}
	// Components orthonormal.
	if !almostEq(Norm2(p.Components.Row(0)), 1, 1e-8) {
		t.Fatal("component 0 not unit")
	}
	if !almostEq(Dot(p.Components.Row(0), p.Components.Row(1)), 0, 1e-6) {
		t.Fatal("components not orthogonal")
	}
}

func TestPCATransform(t *testing.T) {
	rows := [][]float64{{1, 0}, {2, 0}, {3, 0}, {4, 0}}
	p, err := FitPCA(rows, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	proj := p.TransformAll(rows)
	// Projections must preserve the ordering along the line (up to a
	// global sign).
	sign := 1.0
	if proj[1][0] < proj[0][0] {
		sign = -1
	}
	for i := 1; i < 4; i++ {
		if sign*(proj[i][0]-proj[i-1][0]) <= 0 {
			t.Fatalf("projections not monotone: %v", proj)
		}
	}
	// Mean of projections ~ 0.
	var mean float64
	for _, r := range proj {
		mean += r[0]
	}
	if !almostEq(mean/4, 0, 1e-9) {
		t.Fatalf("projection mean %v", mean/4)
	}
}

func TestFitPCAValidation(t *testing.T) {
	if _, err := FitPCA(nil, 1, 1); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := FitPCA([][]float64{{1, 2}}, 3, 1); err == nil {
		t.Error("k>d accepted")
	}
	if _, err := FitPCA([][]float64{{1, 2}, {1}}, 1, 1); err == nil {
		t.Error("ragged input accepted")
	}
}

// Property: total variance of the PCA projection never exceeds the
// total variance of the data, and top-1 variance equals the largest
// covariance eigenvalue for small d.
func TestPCAVarianceProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 10 + rng.Intn(30)
		d := 2 + rng.Intn(4)
		rows := make([][]float64, n)
		for i := range rows {
			rows[i] = make([]float64, d)
			for j := range rows[i] {
				rows[i][j] = rng.NormFloat64() * float64(j+1)
			}
		}
		p, err := FitPCA(rows, 1, seed)
		if err != nil {
			return false
		}
		vals, _, err := JacobiEigen(Covariance(rows))
		if err != nil {
			return false
		}
		return almostEq(p.Variances[0], vals[0], 1e-6*math.Abs(vals[0])+1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
