package linalg

import "fmt"

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols
}

// NewMatrix allocates a zero Rows x Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative matrix shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows copies a slice of equal-length rows into a Matrix.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("linalg: FromRows with ragged rows")
		}
		copy(m.Row(i), r)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i; the slice aliases matrix storage.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.Data[j*t.Cols+i] = v
		}
	}
	return t
}

// MulVec computes m * x.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("linalg: MulVec shape mismatch %dx%d * %d", m.Rows, m.Cols, len(x)))
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		y[i] = Dot(m.Row(i), x)
	}
	return y
}

// Mul computes m * b as a new matrix.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: Mul shape mismatch %dx%d * %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		mrow := m.Row(i)
		orow := out.Row(i)
		for k, a := range mrow {
			if a == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += a * bv
			}
		}
	}
	return out
}

// Covariance returns the d x d sample covariance matrix of the rows of
// x (dividing by n-1; by n when n == 1).
func Covariance(rows [][]float64) *Matrix {
	n := len(rows)
	if n == 0 {
		panic("linalg: Covariance of no rows")
	}
	d := len(rows[0])
	mean := Mean(rows)
	cov := NewMatrix(d, d)
	centered := make([]float64, d)
	for _, r := range rows {
		for i := range centered {
			centered[i] = r[i] - mean[i]
		}
		for i := 0; i < d; i++ {
			ci := centered[i]
			if ci == 0 {
				continue
			}
			crow := cov.Row(i)
			for j := 0; j < d; j++ {
				crow[j] += ci * centered[j]
			}
		}
	}
	div := float64(n - 1)
	if n == 1 {
		div = 1
	}
	Scale(1/div, cov.Data)
	return cov
}
