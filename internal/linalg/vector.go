// Package linalg implements the small dense linear-algebra kernel the
// V2V reproduction needs: vector primitives, a dense matrix type, a
// Jacobi eigensolver for symmetric matrices, Rayleigh-Ritz subspace
// iteration for leading eigenpairs, and principal component analysis
// (used by the paper's visualization experiments, Figures 4 and 8).
//
// Everything is float64 and allocation-conscious rather than tuned;
// the hot paths of the reproduction live in package word2vec, not
// here.
package linalg

import (
	"fmt"
	"math"
)

// Dot returns the inner product of a and b. It panics on length
// mismatch.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Axpy computes y += alpha*x in place.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: Axpy length mismatch %d vs %d", len(x), len(y)))
	}
	for i := range x {
		y[i] += alpha * x[i]
	}
}

// Scale multiplies x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// Normalize scales x to unit Euclidean norm in place and returns the
// original norm. A zero vector is left unchanged.
func Normalize(x []float64) float64 {
	n := Norm2(x)
	if n > 0 {
		Scale(1/n, x)
	}
	return n
}

// SquaredDistance returns ||a-b||^2.
func SquaredDistance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: SquaredDistance length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// EuclideanDistance returns ||a-b||.
func EuclideanDistance(a, b []float64) float64 {
	return math.Sqrt(SquaredDistance(a, b))
}

// Mean returns the coordinate-wise mean of the rows. It panics when
// rows is empty or ragged.
func Mean(rows [][]float64) []float64 {
	if len(rows) == 0 {
		panic("linalg: Mean of no rows")
	}
	d := len(rows[0])
	mean := make([]float64, d)
	for _, r := range rows {
		if len(r) != d {
			panic("linalg: Mean of ragged rows")
		}
		for i, v := range r {
			mean[i] += v
		}
	}
	Scale(1/float64(len(rows)), mean)
	return mean
}
