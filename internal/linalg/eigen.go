package linalg

import (
	"fmt"
	"math"
	"sort"

	"v2v/internal/xrand"
)

// JacobiEigen computes all eigenvalues and eigenvectors of the
// symmetric matrix a using the cyclic Jacobi rotation method. The
// input is not modified. Results are sorted by decreasing eigenvalue;
// eigenvector i is the i-th row of the returned matrix.
//
// Jacobi is O(d^3) per sweep and intended for small d (tests, k x k
// Rayleigh-Ritz projections). Use TopEigenpairs for large matrices.
func JacobiEigen(a *Matrix) (values []float64, vectors *Matrix, err error) {
	if a.Rows != a.Cols {
		return nil, nil, fmt.Errorf("linalg: JacobiEigen on %dx%d non-square matrix", a.Rows, a.Cols)
	}
	d := a.Rows
	// Verify symmetry up to round-off.
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			diff := math.Abs(a.At(i, j) - a.At(j, i))
			scale := math.Abs(a.At(i, j)) + math.Abs(a.At(j, i)) + 1e-300
			if diff > 1e-8*scale && diff > 1e-12 {
				return nil, nil, fmt.Errorf("linalg: JacobiEigen on non-symmetric matrix (a[%d][%d]=%g, a[%d][%d]=%g)",
					i, j, a.At(i, j), j, i, a.At(j, i))
			}
		}
	}
	w := a.Clone()
	v := NewMatrix(d, d)
	for i := 0; i < d; i++ {
		v.Set(i, i, 1)
	}

	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		var off float64
		for i := 0; i < d; i++ {
			for j := i + 1; j < d; j++ {
				off += w.At(i, j) * w.At(i, j)
			}
		}
		if off < 1e-22 {
			break
		}
		for p := 0; p < d; p++ {
			for q := p + 1; q < d; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app := w.At(p, p)
				aqq := w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c

				// Apply the rotation G(p, q, theta) on both sides.
				for k := 0; k < d; k++ {
					akp := w.At(k, p)
					akq := w.At(k, q)
					w.Set(k, p, c*akp-s*akq)
					w.Set(k, q, s*akp+c*akq)
				}
				for k := 0; k < d; k++ {
					apk := w.At(p, k)
					aqk := w.At(q, k)
					w.Set(p, k, c*apk-s*aqk)
					w.Set(q, k, s*apk+c*aqk)
				}
				// Accumulate eigenvectors (rows of v).
				for k := 0; k < d; k++ {
					vpk := v.At(p, k)
					vqk := v.At(q, k)
					v.Set(p, k, c*vpk-s*vqk)
					v.Set(q, k, s*vpk+c*vqk)
				}
			}
		}
	}

	values = make([]float64, d)
	order := make([]int, d)
	for i := 0; i < d; i++ {
		values[i] = w.At(i, i)
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool { return values[order[x]] > values[order[y]] })
	sortedVals := make([]float64, d)
	vectors = NewMatrix(d, d)
	for rank, idx := range order {
		sortedVals[rank] = values[idx]
		copy(vectors.Row(rank), v.Row(idx))
	}
	return sortedVals, vectors, nil
}

// MatVec is a matrix-free linear operator: it writes A*x into dst.
type MatVec func(dst, x []float64)

// TopEigenpairs computes the k leading eigenpairs of a symmetric
// positive semi-definite operator of dimension d given only its
// matrix-vector product, using block subspace iteration with
// Rayleigh-Ritz extraction. Eigenvalues are returned in decreasing
// order; eigenvector i is row i of the returned matrix.
func TopEigenpairs(d, k int, apply MatVec, seed uint64) ([]float64, *Matrix, error) {
	if k <= 0 || k > d {
		return nil, nil, fmt.Errorf("linalg: TopEigenpairs k=%d out of range (d=%d)", k, d)
	}
	rng := xrand.New(seed ^ 0x9e3779b97f4a7c15)
	// Basis rows b[0..k): start random, keep orthonormal.
	basis := NewMatrix(k, d)
	for i := 0; i < k; i++ {
		row := basis.Row(i)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
	}
	orthonormalizeRows(basis)

	next := NewMatrix(k, d)
	prev := make([]float64, k)
	values := make([]float64, k)
	const maxIter = 300
	const tol = 1e-10
	for iter := 0; iter < maxIter; iter++ {
		for i := 0; i < k; i++ {
			apply(next.Row(i), basis.Row(i))
		}
		// Rayleigh-Ritz: project onto span(basis-after-multiply).
		copy(basis.Data, next.Data)
		if !orthonormalizeRows(basis) {
			// Degenerate operator (rank < k): re-randomise the lost
			// directions and continue.
			for i := 0; i < k; i++ {
				if Norm2(basis.Row(i)) < 0.5 {
					row := basis.Row(i)
					for j := range row {
						row[j] = rng.NormFloat64()
					}
				}
			}
			orthonormalizeRows(basis)
		}
		// Small projected matrix C = B A B^T (k x k).
		ab := NewMatrix(k, d)
		for i := 0; i < k; i++ {
			apply(ab.Row(i), basis.Row(i))
		}
		c := NewMatrix(k, k)
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				c.Set(i, j, Dot(basis.Row(j), ab.Row(i)))
			}
		}
		// Symmetrise round-off before Jacobi.
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				m := (c.At(i, j) + c.At(j, i)) / 2
				c.Set(i, j, m)
				c.Set(j, i, m)
			}
		}
		vals, rot, err := JacobiEigen(c)
		if err != nil {
			return nil, nil, err
		}
		copy(values, vals)
		// Rotate the basis: new basis row i = sum_j rot[i][j] * basis row j.
		rotated := NewMatrix(k, d)
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				Axpy(rot.At(i, j), basis.Row(j), rotated.Row(i))
			}
		}
		copy(basis.Data, rotated.Data)

		converged := true
		for i := 0; i < k; i++ {
			denom := math.Abs(prev[i]) + 1e-30
			if math.Abs(values[i]-prev[i]) > tol*denom+tol {
				converged = false
			}
		}
		copy(prev, values)
		if converged && iter > 2 {
			break
		}
	}
	return values, basis, nil
}

// orthonormalizeRows performs modified Gram-Schmidt on the rows of m
// in place. It reports whether all rows remained independent; rows
// that collapse to (near) zero are zeroed.
func orthonormalizeRows(m *Matrix) bool {
	ok := true
	for i := 0; i < m.Rows; i++ {
		ri := m.Row(i)
		for j := 0; j < i; j++ {
			rj := m.Row(j)
			Axpy(-Dot(ri, rj), rj, ri)
		}
		if Normalize(ri) < 1e-12 {
			for k := range ri {
				ri[k] = 0
			}
			ok = false
		}
	}
	return ok
}
