package linalg

import "fmt"

// PCA holds a fitted principal component analysis: the data mean, the
// top-k principal axes (rows of Components) and the variance captured
// by each.
type PCA struct {
	Mean       []float64 // d
	Components *Matrix   // k x d, orthonormal rows
	Variances  []float64 // k, decreasing
}

// FitPCA fits a k-component PCA to the rows of x. The covariance
// operator is applied matrix-free (cost O(n*d) per product), so d may
// be large; only the k leading eigenpairs are extracted by subspace
// iteration.
func FitPCA(rows [][]float64, k int, seed uint64) (*PCA, error) {
	n := len(rows)
	if n == 0 {
		return nil, fmt.Errorf("linalg: FitPCA with no rows")
	}
	d := len(rows[0])
	for _, r := range rows {
		if len(r) != d {
			return nil, fmt.Errorf("linalg: FitPCA with ragged rows")
		}
	}
	if k <= 0 || k > d {
		return nil, fmt.Errorf("linalg: FitPCA k=%d out of range (d=%d)", k, d)
	}
	mean := Mean(rows)
	div := float64(n - 1)
	if n == 1 {
		div = 1
	}
	// apply computes dst = Cov * x = (1/div) * Xc^T (Xc x) without
	// forming the covariance matrix.
	proj := make([]float64, n)
	apply := func(dst, x []float64) {
		meanDot := Dot(mean, x)
		for i, r := range rows {
			proj[i] = Dot(r, x) - meanDot
		}
		for j := range dst {
			dst[j] = 0
		}
		for i, r := range rows {
			p := proj[i]
			if p == 0 {
				continue
			}
			for j := range dst {
				dst[j] += p * (r[j] - mean[j])
			}
		}
		Scale(1/div, dst)
	}
	values, vectors, err := TopEigenpairs(d, k, apply, seed)
	if err != nil {
		return nil, err
	}
	for i := range values {
		if values[i] < 0 {
			values[i] = 0 // clamp round-off on PSD spectrum
		}
	}
	return &PCA{Mean: mean, Components: vectors, Variances: values}, nil
}

// Transform projects a single point onto the fitted components,
// returning its k coordinates.
func (p *PCA) Transform(x []float64) []float64 {
	centered := make([]float64, len(x))
	for i := range x {
		centered[i] = x[i] - p.Mean[i]
	}
	out := make([]float64, p.Components.Rows)
	for i := 0; i < p.Components.Rows; i++ {
		out[i] = Dot(p.Components.Row(i), centered)
	}
	return out
}

// TransformAll projects every row, returning an n x k matrix as rows.
func (p *PCA) TransformAll(rows [][]float64) [][]float64 {
	out := make([][]float64, len(rows))
	for i, r := range rows {
		out[i] = p.Transform(r)
	}
	return out
}
