package linalg

import (
	"testing"

	"v2v/internal/xrand"
)

func randRows(n, d int, seed uint64) [][]float64 {
	rng := xrand.New(seed)
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, d)
		for j := range rows[i] {
			rows[i][j] = rng.NormFloat64()
		}
	}
	return rows
}

// BenchmarkDot measures the inner-product kernel at embedding sizes.
func BenchmarkDot(b *testing.B) {
	for _, d := range []int{10, 100, 1000} {
		x := randRows(1, d, 1)[0]
		y := randRows(1, d, 2)[0]
		b.Run(dstr(d), func(b *testing.B) {
			var sink float64
			for i := 0; i < b.N; i++ {
				sink += Dot(x, y)
			}
			_ = sink
		})
	}
}

// BenchmarkFitPCA measures the matrix-free top-2 PCA on
// embedding-sized inputs (1000 x d, the paper's Figure 4 shape).
func BenchmarkFitPCA(b *testing.B) {
	for _, d := range []int{50, 250, 600} {
		rows := randRows(1000, d, 3)
		b.Run(dstr(d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := FitPCA(rows, 2, 4); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkJacobiEigen measures the dense eigensolver at the sizes
// the Rayleigh-Ritz projection uses.
func BenchmarkJacobiEigen(b *testing.B) {
	for _, d := range []int{4, 16, 64} {
		rng := xrand.New(5)
		a := NewMatrix(d, d)
		for i := 0; i < d; i++ {
			for j := i; j < d; j++ {
				v := rng.NormFloat64()
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		b.Run(dstr(d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := JacobiEigen(a); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func dstr(d int) string {
	switch d {
	case 4:
		return "d=4"
	case 10:
		return "d=10"
	case 16:
		return "d=16"
	case 50:
		return "d=50"
	case 64:
		return "d=64"
	case 100:
		return "d=100"
	case 250:
		return "d=250"
	case 600:
		return "d=600"
	default:
		return "d=1000"
	}
}
