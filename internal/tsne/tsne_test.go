package tsne

import (
	"math"
	"testing"

	"v2v/internal/xrand"
)

func blobs(k, per int, sep float64, seed uint64) ([][]float64, []int) {
	rng := xrand.New(seed)
	var pts [][]float64
	var lbl []int
	for c := 0; c < k; c++ {
		cx := float64(c) * sep
		for i := 0; i < per; i++ {
			pts = append(pts, []float64{
				cx + rng.NormFloat64()*0.3,
				rng.NormFloat64() * 0.3,
				rng.NormFloat64() * 0.3,
			})
			lbl = append(lbl, c)
		}
	}
	return pts, lbl
}

func TestEmbedRejectsEmpty(t *testing.T) {
	if _, err := Embed(nil, Config{}); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestEmbedShape(t *testing.T) {
	pts, _ := blobs(2, 15, 10, 1)
	out, err := Embed(pts, Config{OutputDims: 2, Iterations: 100, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(pts) || len(out[0]) != 2 {
		t.Fatalf("shape %dx%d", len(out), len(out[0]))
	}
	for _, p := range out {
		for _, v := range p {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatal("non-finite embedding")
			}
		}
	}
}

func TestEmbedSeparatesClusters(t *testing.T) {
	pts, lbl := blobs(3, 20, 20, 3)
	out, err := Embed(pts, Config{Iterations: 300, Perplexity: 10, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	var intra, inter float64
	var nIntra, nInter int
	for i := range out {
		for j := i + 1; j < len(out); j++ {
			d := math.Hypot(out[i][0]-out[j][0], out[i][1]-out[j][1])
			if lbl[i] == lbl[j] {
				intra += d
				nIntra++
			} else {
				inter += d
				nInter++
			}
		}
	}
	intra /= float64(nIntra)
	inter /= float64(nInter)
	if inter < 2*intra {
		t.Fatalf("clusters not separated: intra %.3f inter %.3f", intra, inter)
	}
}

func TestEmbedCentred(t *testing.T) {
	pts, _ := blobs(2, 10, 5, 5)
	out, err := Embed(pts, Config{Iterations: 100, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	var mx, my float64
	for _, p := range out {
		mx += p[0]
		my += p[1]
	}
	mx /= float64(len(out))
	my /= float64(len(out))
	if math.Abs(mx) > 1e-6 || math.Abs(my) > 1e-6 {
		t.Fatalf("embedding not centred: (%v, %v)", mx, my)
	}
}

func TestPerplexityClampedForTinyInputs(t *testing.T) {
	pts := [][]float64{{0, 0}, {1, 0}, {0, 1}}
	if _, err := Embed(pts, Config{Perplexity: 50, Iterations: 20, Seed: 7}); err != nil {
		t.Fatalf("tiny input with big perplexity: %v", err)
	}
}

func TestJointProbabilitiesSymmetricNormalised(t *testing.T) {
	pts, _ := blobs(2, 8, 4, 8)
	p := jointProbabilities(pts, 5)
	n := len(pts)
	var total float64
	for i := 0; i < n; i++ {
		if p[i*n+i] != 0 {
			t.Fatal("diagonal not zero")
		}
		for j := 0; j < n; j++ {
			if p[i*n+j] != p[j*n+i] {
				t.Fatal("P not symmetric")
			}
			total += p[i*n+j]
		}
	}
	if math.Abs(total-1) > 0.01 {
		t.Fatalf("P sums to %v", total)
	}
}
