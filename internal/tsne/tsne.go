// Package tsne implements exact t-distributed stochastic neighbour
// embedding (van der Maaten & Hinton 2008), the alternative
// visualization technique the paper cites alongside PCA. The O(n^2)
// exact formulation is used; it is comfortable for the few thousand
// points of the paper's datasets.
package tsne

import (
	"fmt"
	"math"

	"v2v/internal/xrand"
)

// Config controls the embedding.
type Config struct {
	OutputDims int     // default 2
	Perplexity float64 // default 30
	Iterations int     // default 500
	LearnRate  float64 // default n/EarlyExaggeration (>= 2)
	// EarlyExaggeration multiplies P for the first quarter of the
	// iterations (default 12).
	EarlyExaggeration float64
	Seed              uint64
}

// Embed computes the t-SNE embedding of the given points.
func Embed(points [][]float64, cfg Config) ([][]float64, error) {
	n := len(points)
	if n == 0 {
		return nil, fmt.Errorf("tsne: no points")
	}
	if cfg.OutputDims <= 0 {
		cfg.OutputDims = 2
	}
	if cfg.Perplexity <= 0 {
		cfg.Perplexity = 30
	}
	if cfg.Perplexity >= float64(n) {
		cfg.Perplexity = float64(n-1) / 3
		if cfg.Perplexity < 1 {
			cfg.Perplexity = 1
		}
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = 500
	}
	if cfg.EarlyExaggeration <= 0 {
		cfg.EarlyExaggeration = 12
	}
	if cfg.LearnRate <= 0 {
		// The n/exaggeration heuristic (Belkina et al. 2019): gradient
		// magnitudes scale with the per-pair probability mass ~1/n, so
		// a fixed learning rate diverges on small inputs and crawls on
		// large ones.
		cfg.LearnRate = float64(n) / cfg.EarlyExaggeration
		if cfg.LearnRate < 2 {
			cfg.LearnRate = 2
		}
	}

	p := jointProbabilities(points, cfg.Perplexity)

	rng := xrand.New(cfg.Seed ^ 0x7157e)
	d := cfg.OutputDims
	y := make([][]float64, n)
	vel := make([][]float64, n)
	gains := make([][]float64, n)
	for i := range y {
		y[i] = make([]float64, d)
		vel[i] = make([]float64, d)
		gains[i] = make([]float64, d)
		for j := range y[i] {
			y[i][j] = rng.NormFloat64() * 1e-4
			gains[i][j] = 1
		}
	}

	exagIters := cfg.Iterations / 4
	q := make([]float64, n*n)
	grad := make([]float64, d)
	for iter := 0; iter < cfg.Iterations; iter++ {
		exag := 1.0
		if iter < exagIters {
			exag = cfg.EarlyExaggeration
		}
		momentum := 0.5
		if iter >= 250 {
			momentum = 0.8
		}

		// Student-t affinities in the embedding.
		var sumQ float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				var d2 float64
				for k := 0; k < d; k++ {
					diff := y[i][k] - y[j][k]
					d2 += diff * diff
				}
				v := 1 / (1 + d2)
				q[i*n+j] = v
				q[j*n+i] = v
				sumQ += 2 * v
			}
		}
		if sumQ < 1e-12 {
			sumQ = 1e-12
		}

		for i := 0; i < n; i++ {
			for k := range grad {
				grad[k] = 0
			}
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				pij := exag * p[i*n+j]
				qij := q[i*n+j] / sumQ
				mult := 4 * (pij - qij) * q[i*n+j]
				for k := 0; k < d; k++ {
					grad[k] += mult * (y[i][k] - y[j][k])
				}
			}
			for k := 0; k < d; k++ {
				// Delta-bar-delta gain adaptation, as the reference.
				if (grad[k] > 0) == (vel[i][k] > 0) {
					gains[i][k] *= 0.8
				} else {
					gains[i][k] += 0.2
				}
				if gains[i][k] < 0.01 {
					gains[i][k] = 0.01
				}
				vel[i][k] = momentum*vel[i][k] - cfg.LearnRate*gains[i][k]*grad[k]
				y[i][k] += vel[i][k]
			}
		}

		// Re-centre.
		for k := 0; k < d; k++ {
			var mean float64
			for i := 0; i < n; i++ {
				mean += y[i][k]
			}
			mean /= float64(n)
			for i := 0; i < n; i++ {
				y[i][k] -= mean
			}
		}
	}
	return y, nil
}

// jointProbabilities computes the symmetrised input affinities P with
// per-point bandwidths found by binary search on the perplexity.
func jointProbabilities(points [][]float64, perplexity float64) []float64 {
	n := len(points)
	dist2 := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			var d2 float64
			for k := range points[i] {
				diff := points[i][k] - points[j][k]
				d2 += diff * diff
			}
			dist2[i*n+j] = d2
			dist2[j*n+i] = d2
		}
	}
	logPerp := math.Log(perplexity)
	p := make([]float64, n*n)
	row := make([]float64, n)
	for i := 0; i < n; i++ {
		// Binary search beta = 1/(2 sigma^2) for target entropy.
		beta := 1.0
		betaMin, betaMax := math.Inf(-1), math.Inf(1)
		for t := 0; t < 64; t++ {
			var sum, hBeta float64
			for j := 0; j < n; j++ {
				if j == i {
					row[j] = 0
					continue
				}
				row[j] = math.Exp(-dist2[i*n+j] * beta)
				sum += row[j]
			}
			if sum < 1e-300 {
				sum = 1e-300
			}
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				pj := row[j] / sum
				row[j] = pj
				if pj > 1e-12 {
					hBeta -= pj * math.Log(pj)
				}
			}
			diff := hBeta - logPerp
			if math.Abs(diff) < 1e-5 {
				break
			}
			if diff > 0 {
				betaMin = beta
				if math.IsInf(betaMax, 1) {
					beta *= 2
				} else {
					beta = (beta + betaMax) / 2
				}
			} else {
				betaMax = beta
				if math.IsInf(betaMin, -1) {
					beta /= 2
				} else {
					beta = (beta + betaMin) / 2
				}
			}
		}
		copy(p[i*n:(i+1)*n], row)
	}
	// Symmetrise and normalise.
	var total float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := (p[i*n+j] + p[j*n+i]) / 2
			p[i*n+j] = v
			p[j*n+i] = v
			total += 2 * v
		}
	}
	if total < 1e-300 {
		total = 1e-300
	}
	floor := 1e-12
	for i := range p {
		p[i] /= total
		if p[i] < floor && p[i] > 0 {
			p[i] = floor
		}
	}
	return p
}
