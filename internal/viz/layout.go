package viz

import (
	"math"

	"v2v/internal/graph"
	"v2v/internal/xrand"
)

// LayoutConfig controls the ForceAtlas2-style force-directed layout
// used to draw Figure 3. The model follows Jacomy et al. (2014):
// linear attraction along edges, degree-weighted repulsion between
// all vertex pairs (Barnes-Hut approximated), a gravity term pulling
// toward the origin, and adaptive global speed.
type LayoutConfig struct {
	Iterations int     // default 200
	Repulsion  float64 // k_r scaling (default 10)
	Gravity    float64 // k_g (default 1)
	Theta      float64 // Barnes-Hut opening angle (default 1.2)
	Seed       uint64
}

// Layout computes 2-D positions for every vertex of g.
func Layout(g *graph.Graph, cfg LayoutConfig) (x, y []float64) {
	n := g.NumVertices()
	if cfg.Iterations <= 0 {
		cfg.Iterations = 200
	}
	if cfg.Repulsion <= 0 {
		cfg.Repulsion = 10
	}
	if cfg.Gravity <= 0 {
		cfg.Gravity = 1
	}
	if cfg.Theta <= 0 {
		cfg.Theta = 1.2
	}
	rng := xrand.New(cfg.Seed)
	x = make([]float64, n)
	y = make([]float64, n)
	scale := math.Sqrt(float64(n)) * 10
	for i := 0; i < n; i++ {
		x[i] = (rng.Float64() - 0.5) * scale
		y[i] = (rng.Float64() - 0.5) * scale
	}
	if n <= 1 {
		return x, y
	}

	mass := make([]float64, n)
	for v := 0; v < n; v++ {
		mass[v] = float64(g.Degree(v)) + 1
	}
	fx := make([]float64, n)
	fy := make([]float64, n)
	prevFx := make([]float64, n)
	prevFy := make([]float64, n)
	speed := 1.0

	for iter := 0; iter < cfg.Iterations; iter++ {
		copy(prevFx, fx)
		copy(prevFy, fy)
		for i := range fx {
			fx[i] = 0
			fy[i] = 0
		}

		// Repulsion via Barnes-Hut.
		qt := buildQuadtree(x, y, mass)
		for v := 0; v < n; v++ {
			mv := mass[v]
			qt.repulsion(int32(v), x, y, cfg.Theta, func(dx, dy, m float64) {
				d2 := dx*dx + dy*dy
				if d2 < 1e-9 {
					d2 = 1e-9
				}
				f := cfg.Repulsion * mv * m / d2
				d := math.Sqrt(d2)
				fx[v] += f * dx / d
				fy[v] += f * dy / d
			})
		}

		// Attraction along edges (linear in distance, as FA2).
		for u := 0; u < n; u++ {
			for _, v := range g.Neighbors(u) {
				if g.Directed() || u < v {
					dx := x[v] - x[u]
					dy := y[v] - y[u]
					fx[u] += dx
					fy[u] += dy
					fx[v] -= dx
					fy[v] -= dy
				}
			}
		}

		// Gravity toward the origin, proportional to mass.
		for v := 0; v < n; v++ {
			d := math.Hypot(x[v], y[v])
			if d > 1e-9 {
				fx[v] -= cfg.Gravity * mass[v] * x[v] / d
				fy[v] -= cfg.Gravity * mass[v] * y[v] / d
			}
		}

		// Adaptive speed: compare force swing (direction changes) to
		// traction (consistent motion), then displace.
		var swing, traction float64
		for v := 0; v < n; v++ {
			sw := math.Hypot(fx[v]-prevFx[v], fy[v]-prevFy[v])
			tr := math.Hypot(fx[v]+prevFx[v], fy[v]+prevFy[v]) / 2
			swing += mass[v] * sw
			traction += mass[v] * tr
		}
		if swing > 0 {
			target := 0.3 * traction / swing
			if target < speed*1.5 {
				speed = target
			} else {
				speed *= 1.5
			}
		}
		if speed < 1e-5 {
			speed = 1e-5
		}
		for v := 0; v < n; v++ {
			sw := math.Hypot(fx[v]-prevFx[v], fy[v]-prevFy[v])
			local := speed / (1 + speed*math.Sqrt(sw))
			dx := fx[v] * local
			dy := fy[v] * local
			// Clamp per-step displacement to keep the system stable.
			d := math.Hypot(dx, dy)
			maxD := scale / 10
			if d > maxD {
				dx *= maxD / d
				dy *= maxD / d
			}
			x[v] += dx
			y[v] += dy
		}
	}
	return x, y
}
