package viz

import (
	"io"
	"testing"

	"v2v/internal/graph"
	"v2v/internal/xrand"
)

// BenchmarkLayout measures the Barnes-Hut force layout at the Figure
// 3 graph size.
func BenchmarkLayout(b *testing.B) {
	g, _ := graph.CommunityBenchmark(graph.CommunityBenchmarkConfig{
		NumCommunities: 10, CommunitySize: 50, Alpha: 0.5, InterEdges: 100, Seed: 1,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Layout(g, LayoutConfig{Iterations: 20, Seed: 2})
	}
}

// BenchmarkQuadtreeBuild measures tree construction.
func BenchmarkQuadtreeBuild(b *testing.B) {
	rng := xrand.New(3)
	n := 5000
	x := make([]float64, n)
	y := make([]float64, n)
	mass := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
		mass[i] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buildQuadtree(x, y, mass)
	}
}

// BenchmarkScatterSVG measures SVG rendering of a 1000-point scatter.
func BenchmarkScatterSVG(b *testing.B) {
	rng := xrand.New(4)
	n := 1000
	p := &ScatterPlot{X: make([]float64, n), Y: make([]float64, n), Category: make([]int, n)}
	for i := 0; i < n; i++ {
		p.X[i] = rng.NormFloat64()
		p.Y[i] = rng.NormFloat64()
		p.Category[i] = i % 10
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.WriteSVG(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
