package viz

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"v2v/internal/graph"
	"v2v/internal/xrand"
)

func TestScatterPlotSVG(t *testing.T) {
	p := &ScatterPlot{
		Title:    "test <plot>",
		X:        []float64{0, 1, 2},
		Y:        []float64{2, 1, 0},
		Category: []int{0, 1, 0},
		Labels:   []string{"alpha", "beta"},
	}
	var buf bytes.Buffer
	if err := p.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.HasPrefix(s, "<svg") || !strings.HasSuffix(strings.TrimSpace(s), "</svg>") {
		t.Fatal("not an SVG document")
	}
	if strings.Count(s, "<circle") < 3 {
		t.Fatal("missing point circles")
	}
	if strings.Contains(s, "<plot>") {
		t.Fatal("title not escaped")
	}
	if !strings.Contains(s, "test &lt;plot&gt;") {
		t.Fatal("escaped title missing")
	}
	if !strings.Contains(s, "alpha") || !strings.Contains(s, "beta") {
		t.Fatal("legend missing")
	}
}

func TestScatterPlotValidation(t *testing.T) {
	p := &ScatterPlot{X: []float64{1}, Y: []float64{1, 2}}
	if err := p.WriteSVG(&bytes.Buffer{}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	p2 := &ScatterPlot{X: []float64{1}, Y: []float64{1}, Category: []int{0, 1}}
	if err := p2.WriteSVG(&bytes.Buffer{}); err == nil {
		t.Fatal("category mismatch accepted")
	}
}

func TestScatterPlotDegenerate(t *testing.T) {
	// Single point and identical coordinates must not divide by zero.
	p := &ScatterPlot{X: []float64{5, 5}, Y: []float64{5, 5}}
	var buf bytes.Buffer
	if err := p.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "NaN") {
		t.Fatal("NaN in SVG output")
	}
}

func TestLineChartSVG(t *testing.T) {
	c := &LineChart{
		Title:  "precision vs alpha",
		XLabel: "alpha",
		YLabel: "precision",
		Series: []Series{
			{Name: "dim 20", X: []float64{0.1, 0.5, 1}, Y: []float64{0.8, 0.9, 0.95}},
			{Name: "dim 50", X: []float64{0.1, 0.5, 1}, Y: []float64{0.85, 0.93, 0.97}},
		},
	}
	var buf bytes.Buffer
	if err := c.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if strings.Count(s, "<polyline") != 2 {
		t.Fatal("wrong series count")
	}
	if !strings.Contains(s, "dim 20") || !strings.Contains(s, "precision vs alpha") {
		t.Fatal("labels missing")
	}
}

func TestLineChartValidation(t *testing.T) {
	c := &LineChart{Series: []Series{{Name: "bad", X: []float64{1}, Y: []float64{1, 2}}}}
	if err := c.WriteSVG(&bytes.Buffer{}); err == nil {
		t.Fatal("ragged series accepted")
	}
	// Empty chart renders without error.
	if err := (&LineChart{}).WriteSVG(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestGraphPlotSVG(t *testing.T) {
	p := &GraphPlot{
		X:     []float64{0, 1, 0.5},
		Y:     []float64{0, 0, 1},
		Edges: [][2]int{{0, 1}, {1, 2}},
	}
	var buf bytes.Buffer
	if err := p.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if strings.Count(s, "<line") < 2 {
		t.Fatal("edges missing")
	}
	if strings.Count(s, "<circle") != 3 {
		t.Fatal("vertices missing")
	}
}

func TestBarChartSVG(t *testing.T) {
	c := &BarChart{
		Title:  "degrees",
		Labels: []string{"0", "1", "2"},
		Values: []float64{5, 10, 2},
	}
	var buf bytes.Buffer
	if err := c.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if strings.Count(s, "<rect") < 4 { // background + 3 bars
		t.Fatalf("missing bars: %d rects", strings.Count(s, "<rect"))
	}
	if !strings.Contains(s, "degrees") {
		t.Fatal("title missing")
	}
}

func TestBarChartValidationAndEmpty(t *testing.T) {
	bad := &BarChart{Labels: []string{"a"}, Values: []float64{1, 2}}
	if err := bad.WriteSVG(&bytes.Buffer{}); err == nil {
		t.Fatal("mismatched labels accepted")
	}
	empty := &BarChart{}
	var buf bytes.Buffer
	if err := empty.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "</svg>") {
		t.Fatal("empty chart not closed")
	}
	zero := &BarChart{Labels: []string{"x"}, Values: []float64{0}}
	if err := zero.WriteSVG(&bytes.Buffer{}); err != nil {
		t.Fatal("all-zero values should render")
	}
}

func TestColorCycles(t *testing.T) {
	if Color(0) != Palette[0] {
		t.Fatal("Color(0) wrong")
	}
	if Color(len(Palette)) != Palette[0] {
		t.Fatal("Color does not cycle")
	}
	if Color(-3) == "" {
		t.Fatal("negative index should still return a colour")
	}
}

func TestQuadtreeMassConservation(t *testing.T) {
	rng := xrand.New(3)
	n := 200
	x := make([]float64, n)
	y := make([]float64, n)
	mass := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
		mass[i] = 1 + rng.Float64()
		total += mass[i]
	}
	qt := buildQuadtree(x, y, mass)
	root := qt.nodes[0]
	if math.Abs(root.mass-total) > 1e-9 {
		t.Fatalf("root mass %v, want %v", root.mass, total)
	}
	if root.count != int32(n) {
		t.Fatalf("root count %d", root.count)
	}
}

func TestQuadtreeCoincidentPoints(t *testing.T) {
	// All points identical: insertion must terminate (max depth
	// aggregation) and preserve mass.
	x := []float64{1, 1, 1, 1}
	y := []float64{2, 2, 2, 2}
	mass := []float64{1, 1, 1, 1}
	qt := buildQuadtree(x, y, mass)
	if qt.nodes[0].mass != 4 {
		t.Fatalf("mass %v", qt.nodes[0].mass)
	}
}

func TestQuadtreeRepulsionApproximatesExact(t *testing.T) {
	rng := xrand.New(7)
	n := 150
	x := make([]float64, n)
	y := make([]float64, n)
	mass := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = rng.NormFloat64() * 10
		y[i] = rng.NormFloat64() * 10
		mass[i] = 1
	}
	qt := buildQuadtree(x, y, mass)
	kernel := func(px, py float64) func(dx, dy, m float64) (float64, float64) {
		return func(dx, dy, m float64) (float64, float64) {
			d2 := dx*dx + dy*dy
			if d2 < 1e-9 {
				d2 = 1e-9
			}
			d := math.Sqrt(d2)
			f := m / d2
			return f * dx / d, f * dy / d
		}
	}
	for _, p := range []int32{0, 17, 99} {
		var ax, ay float64
		qt.repulsion(p, x, y, 0.5, func(dx, dy, m float64) {
			fx, fy := kernel(x[p], y[p])(dx, dy, m)
			ax += fx
			ay += fy
		})
		// Exact O(n) sum.
		var ex, ey float64
		for j := 0; j < n; j++ {
			if int32(j) == p {
				continue
			}
			fx, fy := kernel(x[p], y[p])(x[p]-x[j], y[p]-y[j], mass[j])
			ex += fx
			ey += fy
		}
		norm := math.Hypot(ex, ey) + 1e-12
		if math.Hypot(ax-ex, ay-ey)/norm > 0.1 {
			t.Fatalf("point %d: BH force (%.4f,%.4f) vs exact (%.4f,%.4f)", p, ax, ay, ex, ey)
		}
	}
}

func TestLayoutSeparatesCommunities(t *testing.T) {
	g, truth := graph.TwoCliquesBridge(10)
	x, y := Layout(g, LayoutConfig{Iterations: 150, Seed: 5})
	// Mean positions of the two cliques should be far apart relative
	// to the intra-clique spread.
	var cx, cy [2]float64
	var cnt [2]int
	for v := range truth {
		c := truth[v]
		cx[c] += x[v]
		cy[c] += y[v]
		cnt[c]++
	}
	for c := 0; c < 2; c++ {
		cx[c] /= float64(cnt[c])
		cy[c] /= float64(cnt[c])
	}
	sep := math.Hypot(cx[0]-cx[1], cy[0]-cy[1])
	var spread float64
	for v := range truth {
		c := truth[v]
		spread += math.Hypot(x[v]-cx[c], y[v]-cy[c])
	}
	spread /= float64(len(truth))
	if sep < spread {
		t.Fatalf("communities not separated: sep %.2f, spread %.2f", sep, spread)
	}
}

func TestLayoutFiniteAndDeterministic(t *testing.T) {
	g := graph.ErdosRenyiGNM(50, 120, 9)
	x1, y1 := Layout(g, LayoutConfig{Iterations: 50, Seed: 11})
	x2, y2 := Layout(g, LayoutConfig{Iterations: 50, Seed: 11})
	for i := range x1 {
		if math.IsNaN(x1[i]) || math.IsInf(x1[i], 0) || math.IsNaN(y1[i]) {
			t.Fatal("non-finite layout position")
		}
		if x1[i] != x2[i] || y1[i] != y2[i] {
			t.Fatal("layout not deterministic for fixed seed")
		}
	}
}

func TestLayoutTinyGraphs(t *testing.T) {
	for _, n := range []int{0, 1, 2} {
		b := graph.NewBuilder(n)
		if n == 2 {
			b.AddEdge(0, 1)
		}
		g := b.Build()
		x, y := Layout(g, LayoutConfig{Iterations: 10, Seed: 1})
		if len(x) != n || len(y) != n {
			t.Fatalf("layout size %d/%d for n=%d", len(x), len(y), n)
		}
	}
}
