package viz

// quadtree is a Barnes-Hut quadtree over 2-D points with masses,
// supporting approximate aggregate repulsion queries for the force
// layout. Nodes are stored in a flat slice to avoid pointer chasing.
type quadtree struct {
	nodes []qnode
}

type qnode struct {
	// Bounding square.
	cx, cy, half float64
	// Aggregate mass and centre of mass.
	mass float64
	comX float64
	comY float64
	// Children indices (0 when absent); leaf point index or -1.
	child [4]int32
	point int32
	count int32
}

// buildQuadtree constructs the tree over the given positions and
// masses. Duplicate points are merged into a single leaf (their
// masses add), which keeps insertion terminating.
func buildQuadtree(x, y, mass []float64) *quadtree {
	minX, maxX := bounds(x)
	minY, maxY := bounds(y)
	cx, cy := (minX+maxX)/2, (minY+maxY)/2
	half := maxX - minX
	if maxY-minY > half {
		half = maxY - minY
	}
	half = half/2 + 1e-9

	t := &quadtree{nodes: make([]qnode, 1, 2*len(x)+1)}
	t.nodes[0] = qnode{cx: cx, cy: cy, half: half, point: -1}
	for i := range x {
		t.insert(0, int32(i), x, y, mass, 0)
	}
	return t
}

const maxQuadDepth = 48

func (t *quadtree) insert(node int, p int32, x, y, mass []float64, depth int) {
	n := &t.nodes[node]
	n.mass += mass[p]
	n.comX += mass[p] * x[p]
	n.comY += mass[p] * y[p]
	n.count++

	if n.count == 1 {
		n.point = p
		return
	}
	if depth >= maxQuadDepth {
		// Coincident points: keep aggregated at this node.
		return
	}
	// Internal node: push the resident point down first, then the new
	// one.
	if n.point >= 0 {
		old := n.point
		n.point = -1
		t.place(node, old, x, y, mass, depth)
		n = &t.nodes[node] // t.nodes may have been reallocated
	}
	t.place(node, p, x, y, mass, depth)
}

func (t *quadtree) place(node int, p int32, x, y, mass []float64, depth int) {
	n := &t.nodes[node]
	q := 0
	if x[p] > n.cx {
		q |= 1
	}
	if y[p] > n.cy {
		q |= 2
	}
	if n.child[q] == 0 {
		h := n.half / 2
		ccx := n.cx - h
		if q&1 != 0 {
			ccx = n.cx + h
		}
		ccy := n.cy - h
		if q&2 != 0 {
			ccy = n.cy + h
		}
		t.nodes = append(t.nodes, qnode{cx: ccx, cy: ccy, half: h, point: -1})
		// Re-take the pointer: append may move the backing array.
		t.nodes[node].child[q] = int32(len(t.nodes) - 1)
	}
	child := int(t.nodes[node].child[q])
	t.insert(child, p, x, y, mass, depth+1)
}

// repulsion accumulates the Barnes-Hut approximate repulsive force on
// point p with the given force kernel: for each sufficiently far cell
// (size/dist < theta) or individual point, kernel(dx, dy, mass) is
// invoked with the displacement from the aggregate to p.
func (t *quadtree) repulsion(p int32, x, y []float64, theta float64, kernel func(dx, dy, mass float64)) {
	px, py := x[p], y[p]
	stack := make([]int32, 0, 64)
	stack = append(stack, 0)
	for len(stack) > 0 {
		ni := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := &t.nodes[ni]
		if n.count == 0 {
			continue
		}
		if n.count == 1 && n.point >= 0 {
			if n.point == p {
				continue
			}
			kernel(px-x[n.point], py-y[n.point], t.massOfLeaf(n))
			continue
		}
		comX := n.comX / n.mass
		comY := n.comY / n.mass
		dx := px - comX
		dy := py - comY
		dist2 := dx*dx + dy*dy
		size := 2 * n.half
		if size*size < theta*theta*dist2 {
			kernel(dx, dy, n.mass)
			continue
		}
		leaf := true
		for _, c := range n.child {
			if c != 0 {
				stack = append(stack, c)
				leaf = false
			}
		}
		if leaf {
			// Aggregated coincident points (max depth): treat as one
			// body minus p's own contribution when p is inside.
			kernel(dx, dy, n.mass)
		}
	}
}

func (t *quadtree) massOfLeaf(n *qnode) float64 { return n.mass }
