// Package viz renders the paper's visual artefacts without any
// external dependency: SVG scatter plots of PCA-projected embeddings
// (Figures 4 and 8), SVG line charts for the sweep figures (Figures
// 5-7, 9, 10), and a ForceAtlas2-style force-directed graph layout
// with Barnes-Hut approximation for the raw graph drawings (Figure 3).
package viz

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// Palette is the default categorical palette (colour-blind friendly
// 10-colour cycle, matching matplotlib's tab10 ordering).
var Palette = []string{
	"#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd",
	"#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf",
}

// Color returns palette colour i (cycled).
func Color(i int) string {
	if i < 0 {
		i = -i
	}
	return Palette[i%len(Palette)]
}

// ScatterPlot is a 2-D categorical scatter plot.
type ScatterPlot struct {
	Title    string
	X, Y     []float64
	Category []int    // colour index per point; nil = all one colour
	Labels   []string // legend text per category index; optional
	Width    int      // pixels; default 720
	Height   int      // pixels; default 560
	Radius   float64  // point radius; default 3
}

// WriteSVG renders the plot.
func (p *ScatterPlot) WriteSVG(w io.Writer) error {
	if len(p.X) != len(p.Y) {
		return fmt.Errorf("viz: scatter has %d x values but %d y values", len(p.X), len(p.Y))
	}
	if p.Category != nil && len(p.Category) != len(p.X) {
		return fmt.Errorf("viz: scatter has %d categories for %d points", len(p.Category), len(p.X))
	}
	width, height := p.Width, p.Height
	if width <= 0 {
		width = 720
	}
	if height <= 0 {
		height = 560
	}
	r := p.Radius
	if r <= 0 {
		r = 3
	}
	const margin = 40.0
	minX, maxX := bounds(p.X)
	minY, maxY := bounds(p.Y)
	spanX := maxX - minX
	spanY := maxY - minY
	if spanX == 0 {
		spanX = 1
	}
	if spanY == 0 {
		spanY = 1
	}
	sx := func(x float64) float64 { return margin + (x-minX)/spanX*(float64(width)-2*margin) }
	sy := func(y float64) float64 { return float64(height) - margin - (y-minY)/spanY*(float64(height)-2*margin) }

	fmt.Fprintf(w, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", width, height, width, height)
	fmt.Fprintf(w, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	if p.Title != "" {
		fmt.Fprintf(w, `<text x="%d" y="24" font-family="sans-serif" font-size="16" text-anchor="middle">%s</text>`+"\n", width/2, escape(p.Title))
	}
	for i := range p.X {
		c := "#1f77b4"
		if p.Category != nil {
			c = Color(p.Category[i])
		}
		fmt.Fprintf(w, `<circle cx="%.2f" cy="%.2f" r="%.1f" fill="%s" fill-opacity="0.75"/>`+"\n", sx(p.X[i]), sy(p.Y[i]), r, c)
	}
	if p.Labels != nil {
		p.writeLegend(w, width)
	}
	fmt.Fprintln(w, `</svg>`)
	return nil
}

func (p *ScatterPlot) writeLegend(w io.Writer, width int) {
	cats := make(map[int]bool)
	for _, c := range p.Category {
		cats[c] = true
	}
	keys := make([]int, 0, len(cats))
	for c := range cats {
		keys = append(keys, c)
	}
	sort.Ints(keys)
	y := 40.0
	for _, c := range keys {
		label := fmt.Sprintf("%d", c)
		if c >= 0 && c < len(p.Labels) {
			label = p.Labels[c]
		}
		fmt.Fprintf(w, `<circle cx="%d" cy="%.1f" r="5" fill="%s"/>`+"\n", width-130, y, Color(c))
		fmt.Fprintf(w, `<text x="%d" y="%.1f" font-family="sans-serif" font-size="12">%s</text>`+"\n", width-120, y+4, escape(label))
		y += 18
	}
}

// Series is one line of a LineChart.
type Series struct {
	Name string
	X, Y []float64
}

// LineChart is a multi-series line chart with axes and legend, used
// to regenerate the sweep figures.
type LineChart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Width  int
	Height int
	YMin   float64 // axis range; both zero = auto
	YMax   float64
}

// WriteSVG renders the chart.
func (c *LineChart) WriteSVG(w io.Writer) error {
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 720
	}
	if height <= 0 {
		height = 480
	}
	const margin = 56.0
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("viz: series %q has %d x values but %d y values", s.Name, len(s.X), len(s.Y))
		}
		for i := range s.X {
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if math.IsInf(minX, 1) {
		minX, maxX, minY, maxY = 0, 1, 0, 1
	}
	if c.YMin != 0 || c.YMax != 0 {
		minY, maxY = c.YMin, c.YMax
	}
	spanX, spanY := maxX-minX, maxY-minY
	if spanX == 0 {
		spanX = 1
	}
	if spanY == 0 {
		spanY = 1
	}
	sx := func(x float64) float64 { return margin + (x-minX)/spanX*(float64(width)-2*margin) }
	sy := func(y float64) float64 { return float64(height) - margin - (y-minY)/spanY*(float64(height)-2*margin) }

	fmt.Fprintf(w, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", width, height, width, height)
	fmt.Fprintf(w, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	if c.Title != "" {
		fmt.Fprintf(w, `<text x="%d" y="24" font-family="sans-serif" font-size="16" text-anchor="middle">%s</text>`+"\n", width/2, escape(c.Title))
	}
	// Axes.
	fmt.Fprintf(w, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n", margin, float64(height)-margin, float64(width)-margin, float64(height)-margin)
	fmt.Fprintf(w, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n", margin, margin, margin, float64(height)-margin)
	// Ticks: 5 per axis.
	for i := 0; i <= 5; i++ {
		xv := minX + spanX*float64(i)/5
		yv := minY + spanY*float64(i)/5
		fmt.Fprintf(w, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="10" text-anchor="middle">%.3g</text>`+"\n", sx(xv), float64(height)-margin+16, xv)
		fmt.Fprintf(w, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="10" text-anchor="end">%.3g</text>`+"\n", margin-6, sy(yv)+4, yv)
	}
	if c.XLabel != "" {
		fmt.Fprintf(w, `<text x="%d" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`+"\n", width/2, height-8, escape(c.XLabel))
	}
	if c.YLabel != "" {
		fmt.Fprintf(w, `<text x="16" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 16 %d)">%s</text>`+"\n", height/2, height/2, escape(c.YLabel))
	}
	for si, s := range c.Series {
		color := Color(si)
		fmt.Fprintf(w, `<polyline fill="none" stroke="%s" stroke-width="1.5" points="`, color)
		for i := range s.X {
			fmt.Fprintf(w, "%.2f,%.2f ", sx(s.X[i]), sy(s.Y[i]))
		}
		fmt.Fprintln(w, `"/>`)
		for i := range s.X {
			fmt.Fprintf(w, `<circle cx="%.2f" cy="%.2f" r="2.5" fill="%s"/>`+"\n", sx(s.X[i]), sy(s.Y[i]), color)
		}
		// Legend entry.
		ly := 40 + 16*si
		fmt.Fprintf(w, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`+"\n", width-150, ly, width-130, ly, color)
		fmt.Fprintf(w, `<text x="%d" y="%d" font-family="sans-serif" font-size="11">%s</text>`+"\n", width-124, ly+4, escape(s.Name))
	}
	fmt.Fprintln(w, `</svg>`)
	return nil
}

// BarChart renders labelled bars (used for degree histograms and
// category counts).
type BarChart struct {
	Title  string
	XLabel string
	YLabel string
	Labels []string // one per bar
	Values []float64
	Width  int
	Height int
}

// WriteSVG renders the chart.
func (c *BarChart) WriteSVG(w io.Writer) error {
	if len(c.Labels) != len(c.Values) {
		return fmt.Errorf("viz: bar chart has %d labels for %d values", len(c.Labels), len(c.Values))
	}
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 720
	}
	if height <= 0 {
		height = 420
	}
	const margin = 56.0
	maxV := 0.0
	for _, v := range c.Values {
		if v > maxV {
			maxV = v
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	fmt.Fprintf(w, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", width, height, width, height)
	fmt.Fprintf(w, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	if c.Title != "" {
		fmt.Fprintf(w, `<text x="%d" y="24" font-family="sans-serif" font-size="16" text-anchor="middle">%s</text>`+"\n", width/2, escape(c.Title))
	}
	fmt.Fprintf(w, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n", margin, float64(height)-margin, float64(width)-margin, float64(height)-margin)
	n := len(c.Values)
	if n == 0 {
		fmt.Fprintln(w, `</svg>`)
		return nil
	}
	span := (float64(width) - 2*margin) / float64(n)
	barW := span * 0.8
	for i, v := range c.Values {
		h := v / maxV * (float64(height) - 2*margin)
		x := margin + float64(i)*span + span*0.1
		y := float64(height) - margin - h
		fmt.Fprintf(w, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n", x, y, barW, h, Color(0))
		if n <= 40 {
			fmt.Fprintf(w, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="9" text-anchor="middle">%s</text>`+"\n",
				x+barW/2, float64(height)-margin+12, escape(c.Labels[i]))
		}
	}
	if c.XLabel != "" {
		fmt.Fprintf(w, `<text x="%d" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`+"\n", width/2, height-8, escape(c.XLabel))
	}
	if c.YLabel != "" {
		fmt.Fprintf(w, `<text x="16" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 16 %d)">%s</text>`+"\n", height/2, height/2, escape(c.YLabel))
	}
	fmt.Fprintf(w, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="10" text-anchor="end">%.3g</text>`+"\n", margin-6, margin+4, maxV)
	fmt.Fprintln(w, `</svg>`)
	return nil
}

// GraphPlot draws a laid-out graph: vertex positions plus edges.
type GraphPlot struct {
	Title    string
	X, Y     []float64
	Edges    [][2]int
	Category []int
	Width    int
	Height   int
}

// WriteSVG renders the drawing.
func (p *GraphPlot) WriteSVG(w io.Writer) error {
	if len(p.X) != len(p.Y) {
		return fmt.Errorf("viz: graph plot has %d x values but %d y values", len(p.X), len(p.Y))
	}
	width, height := p.Width, p.Height
	if width <= 0 {
		width = 720
	}
	if height <= 0 {
		height = 720
	}
	const margin = 24.0
	minX, maxX := bounds(p.X)
	minY, maxY := bounds(p.Y)
	spanX, spanY := maxX-minX, maxY-minY
	if spanX == 0 {
		spanX = 1
	}
	if spanY == 0 {
		spanY = 1
	}
	sx := func(x float64) float64 { return margin + (x-minX)/spanX*(float64(width)-2*margin) }
	sy := func(y float64) float64 { return float64(height) - margin - (y-minY)/spanY*(float64(height)-2*margin) }

	fmt.Fprintf(w, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", width, height, width, height)
	fmt.Fprintf(w, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	if p.Title != "" {
		fmt.Fprintf(w, `<text x="%d" y="20" font-family="sans-serif" font-size="14" text-anchor="middle">%s</text>`+"\n", width/2, escape(p.Title))
	}
	for _, e := range p.Edges {
		fmt.Fprintf(w, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#bbbbbb" stroke-width="0.4" stroke-opacity="0.5"/>`+"\n",
			sx(p.X[e[0]]), sy(p.Y[e[0]]), sx(p.X[e[1]]), sy(p.Y[e[1]]))
	}
	for i := range p.X {
		c := "#1f77b4"
		if p.Category != nil {
			c = Color(p.Category[i])
		}
		fmt.Fprintf(w, `<circle cx="%.1f" cy="%.1f" r="2.5" fill="%s"/>`+"\n", sx(p.X[i]), sy(p.Y[i]), c)
	}
	fmt.Fprintln(w, `</svg>`)
	return nil
}

func bounds(xs []float64) (float64, float64) {
	if len(xs) == 0 {
		return 0, 1
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs[1:] {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	return lo, hi
}

func escape(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch r {
		case '<':
			out = append(out, []rune("&lt;")...)
		case '>':
			out = append(out, []rune("&gt;")...)
		case '&':
			out = append(out, []rune("&amp;")...)
		default:
			out = append(out, r)
		}
	}
	return string(out)
}
