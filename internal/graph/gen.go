package graph

import (
	"fmt"

	"v2v/internal/xrand"
)

// CommunityBenchmarkConfig describes the synthetic dataset of the
// paper's Section III-A: NumCommunities groups of CommunitySize
// vertices each, every group an alpha quasi-clique, plus InterEdges
// uniformly random edges connecting distinct groups.
type CommunityBenchmarkConfig struct {
	NumCommunities int     // paper: 10
	CommunitySize  int     // paper: 100
	Alpha          float64 // in (0, 1]; fraction of clique edges present
	InterEdges     int     // paper: 200
	Seed           uint64
}

// DefaultCommunityBenchmark returns the paper's configuration for a
// given alpha: 10 communities of 100 vertices and 200 inter-community
// edges (1000 vertices; ~25000 edges at alpha = 0.5).
func DefaultCommunityBenchmark(alpha float64, seed uint64) CommunityBenchmarkConfig {
	return CommunityBenchmarkConfig{
		NumCommunities: 10,
		CommunitySize:  100,
		Alpha:          alpha,
		InterEdges:     200,
		Seed:           seed,
	}
}

// CommunityBenchmark generates the synthetic ground-truth graph and
// returns it together with the community index of every vertex.
//
// Each community G_i receives alpha * |G_i|(|G_i|-1)/2 distinct
// intra-community edges sampled uniformly without replacement (alpha
// = 1 makes G_i a clique), then InterEdges edges are added between
// uniformly random vertices of distinct communities.
func CommunityBenchmark(cfg CommunityBenchmarkConfig) (*Graph, []int) {
	if cfg.NumCommunities <= 0 || cfg.CommunitySize <= 1 {
		panic(fmt.Sprintf("graph: invalid community benchmark config %+v", cfg))
	}
	if cfg.Alpha < 0 || cfg.Alpha > 1 {
		panic(fmt.Sprintf("graph: alpha %v out of [0,1]", cfg.Alpha))
	}
	rng := xrand.New(cfg.Seed)
	n := cfg.NumCommunities * cfg.CommunitySize
	truth := make([]int, n)
	b := NewBuilder(n)

	size := cfg.CommunitySize
	cliqueEdges := size * (size - 1) / 2
	perGroup := int(cfg.Alpha * float64(cliqueEdges))
	for c := 0; c < cfg.NumCommunities; c++ {
		base := c * size
		for i := 0; i < size; i++ {
			truth[base+i] = c
		}
		// Sample perGroup distinct pairs inside the community by
		// sampling pair ranks without replacement.
		for _, rank := range samplePairs(rng, cliqueEdges, perGroup) {
			i, j := unrankPair(rank)
			b.AddEdge(base+i, base+j)
		}
	}

	// Inter-community edges between uniformly random vertices of
	// distinct communities. Duplicates are allowed to mirror the
	// paper's "200 edges connecting vertices between different
	// groups" without further qualification, but we avoid exact
	// repeats for cleanliness.
	seen := make(map[[2]int]bool, cfg.InterEdges)
	for added := 0; added < cfg.InterEdges; {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if truth[u] == truth[v] {
			continue
		}
		if u > v {
			u, v = v, u
		}
		k := [2]int{u, v}
		if seen[k] {
			continue
		}
		seen[k] = true
		b.AddEdge(u, v)
		added++
	}
	return b.Build(), truth
}

// samplePairs returns k distinct integers in [0, total) sampled
// uniformly. When k is a large fraction of total it uses a shuffle;
// otherwise rejection sampling with a set.
func samplePairs(rng *xrand.RNG, total, k int) []int {
	if k >= total {
		out := make([]int, total)
		for i := range out {
			out[i] = i
		}
		return out
	}
	if k*3 >= total {
		perm := rng.Perm(total)
		return perm[:k]
	}
	seen := make(map[int]bool, k)
	out := make([]int, 0, k)
	for len(out) < k {
		r := rng.Intn(total)
		if seen[r] {
			continue
		}
		seen[r] = true
		out = append(out, r)
	}
	return out
}

// unrankPair maps a rank in [0, C(n,2)) to the pair (i, j), i < j,
// enumerated as (0,1), (0,2), (1,2), (0,3), (1,3), (2,3), ... — the
// colex order, which needs no knowledge of n: j is the largest integer
// with C(j,2) <= rank.
func unrankPair(rank int) (int, int) {
	// Solve j(j-1)/2 <= rank < j(j+1)/2.
	j := int((1 + isqrt(1+8*uint64(rank))) / 2)
	for j*(j-1)/2 > rank {
		j--
	}
	for (j+1)*j/2 <= rank {
		j++
	}
	i := rank - j*(j-1)/2
	return i, j
}

// isqrt returns floor(sqrt(x)) for a uint64 using Newton iteration.
func isqrt(x uint64) uint64 {
	if x == 0 {
		return 0
	}
	r := uint64(1) << ((bitsLen(x) + 1) / 2)
	for {
		nr := (r + x/r) / 2
		if nr >= r {
			return r
		}
		r = nr
	}
}

func bitsLen(x uint64) uint {
	var n uint
	for x > 0 {
		x >>= 1
		n++
	}
	return n
}

// ErdosRenyiGNM generates a uniform random simple undirected graph
// with n vertices and m distinct edges.
func ErdosRenyiGNM(n, m int, seed uint64) *Graph {
	maxEdges := n * (n - 1) / 2
	if m > maxEdges {
		panic(fmt.Sprintf("graph: m=%d exceeds max %d for n=%d", m, maxEdges, n))
	}
	rng := xrand.New(seed)
	b := NewBuilder(n)
	for _, rank := range samplePairs(rng, maxEdges, m) {
		i, j := unrankPair(rank)
		b.AddEdge(i, j)
	}
	return b.Build()
}

// ErdosRenyiGNP generates G(n, p): every unordered pair becomes an
// edge independently with probability p.
func ErdosRenyiGNP(n int, p float64, seed uint64) *Graph {
	rng := xrand.New(seed)
	b := NewBuilder(n)
	for j := 1; j < n; j++ {
		for i := 0; i < j; i++ {
			if rng.Float64() < p {
				b.AddEdge(i, j)
			}
		}
	}
	return b.Build()
}

// BarabasiAlbert generates a preferential-attachment graph: starting
// from a star on m0+1 vertices, each new vertex attaches m edges to
// existing vertices chosen proportionally to degree.
func BarabasiAlbert(n, m int, seed uint64) *Graph {
	if m < 1 || n <= m {
		panic(fmt.Sprintf("graph: invalid BA parameters n=%d m=%d", n, m))
	}
	rng := xrand.New(seed)
	b := NewBuilder(n)
	// repeated holds one entry per edge endpoint, so uniform sampling
	// from it is degree-proportional sampling.
	repeated := make([]int, 0, 2*m*n)
	for v := 1; v <= m; v++ {
		b.AddEdge(0, v)
		repeated = append(repeated, 0, v)
	}
	for v := m + 1; v < n; v++ {
		chosen := make(map[int]bool, m)
		for len(chosen) < m {
			t := repeated[rng.Intn(len(repeated))]
			if t == v || chosen[t] {
				continue
			}
			chosen[t] = true
			b.AddEdge(v, t)
			repeated = append(repeated, v, t)
		}
	}
	return b.Build()
}

// Ring generates the n-cycle.
func Ring(n int) *Graph {
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		b.AddEdge(v, (v+1)%n)
	}
	return b.Build()
}

// Complete generates the complete graph K_n.
func Complete(n int) *Graph {
	b := NewBuilder(n)
	for j := 1; j < n; j++ {
		for i := 0; i < j; i++ {
			b.AddEdge(i, j)
		}
	}
	return b.Build()
}

// Star generates the star K_{1,n-1} with the hub at vertex 0.
func Star(n int) *Graph {
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(0, v)
	}
	return b.Build()
}

// Grid generates the rows x cols 4-neighbour grid graph.
func Grid(rows, cols int) *Graph {
	b := NewBuilder(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return b.Build()
}

// Path generates the path graph on n vertices.
func Path(n int) *Graph {
	b := NewBuilder(n)
	for v := 0; v+1 < n; v++ {
		b.AddEdge(v, v+1)
	}
	return b.Build()
}

// TwoCliquesBridge generates two cliques of the given size joined by a
// single bridge edge — the canonical smallest community-structure test
// case (Zachary-style without the data file).
func TwoCliquesBridge(size int) (*Graph, []int) {
	b := NewBuilder(2 * size)
	truth := make([]int, 2*size)
	for c := 0; c < 2; c++ {
		base := c * size
		for j := 1; j < size; j++ {
			for i := 0; i < j; i++ {
				b.AddEdge(base+i, base+j)
			}
		}
		for i := 0; i < size; i++ {
			truth[base+i] = c
		}
	}
	b.AddEdge(0, size)
	return b.Build(), truth
}
