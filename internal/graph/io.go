package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// EdgeListOptions controls ReadEdgeList parsing.
type EdgeListOptions struct {
	Directed bool
	// Named treats the first two fields as arbitrary vertex names
	// rather than integer indices.
	Named bool
	// Comment is the line-comment prefix; lines starting with it are
	// skipped. Defaults to "#" when empty.
	Comment string
}

// ReadEdgeList parses a whitespace-separated edge list:
//
//	u v [weight [time]]
//
// Blank lines and comment lines are skipped. With opts.Named, u and v
// are vertex names; otherwise they must be non-negative integers.
func ReadEdgeList(r io.Reader, opts EdgeListOptions) (*Graph, error) {
	comment := opts.Comment
	if comment == "" {
		comment = "#"
	}
	b := NewBuilder(0)
	b.SetDirected(opts.Directed)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, comment) {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: need at least 2 fields, got %q", lineNo, line)
		}
		var u, v int
		if opts.Named {
			u = b.AddNamedVertex(fields[0])
			v = b.AddNamedVertex(fields[1])
		} else {
			var err error
			u, err = strconv.Atoi(fields[0])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad vertex %q: %v", lineNo, fields[0], err)
			}
			v, err = strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad vertex %q: %v", lineNo, fields[1], err)
			}
			if u < 0 || v < 0 {
				return nil, fmt.Errorf("graph: line %d: negative vertex index", lineNo)
			}
		}
		w := 1.0
		if len(fields) >= 3 {
			var err error
			w, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad weight %q: %v", lineNo, fields[2], err)
			}
		}
		if len(fields) >= 4 {
			t, err := strconv.ParseInt(fields[3], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad timestamp %q: %v", lineNo, fields[3], err)
			}
			b.AddTemporalEdge(u, v, w, t)
		} else if len(fields) >= 3 {
			b.AddWeightedEdge(u, v, w)
		} else {
			b.AddEdge(u, v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: scanning edge list: %w", err)
	}
	return b.Build(), nil
}

// WriteEdgeList writes the graph in the format accepted by
// ReadEdgeList. Weights are emitted only for weighted graphs and
// timestamps only for temporal graphs.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	dir := "undirected"
	if g.Directed() {
		dir = "directed"
	}
	fmt.Fprintf(bw, "# %s graph: %d vertices, %d edges\n", dir, g.NumVertices(), g.NumEdges())
	for _, e := range g.Edges() {
		switch {
		case g.Temporal():
			fmt.Fprintf(bw, "%d %d %g %d\n", e.From, e.To, e.Weight, e.Time)
		case g.Weighted():
			fmt.Fprintf(bw, "%d %d %g\n", e.From, e.To, e.Weight)
		default:
			fmt.Fprintf(bw, "%d %d\n", e.From, e.To)
		}
	}
	return bw.Flush()
}
