package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadEdgeListBasic(t *testing.T) {
	in := "# comment\n0 1\n1 2\n\n2 3\n"
	g, err := ReadEdgeList(strings.NewReader(in), EdgeListOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4 || g.NumEdges() != 3 {
		t.Fatalf("got %d vertices %d edges", g.NumVertices(), g.NumEdges())
	}
	if g.Directed() || g.Weighted() || g.Temporal() {
		t.Fatal("plain edge list should be undirected/unweighted/untimed")
	}
}

func TestReadEdgeListWeighted(t *testing.T) {
	in := "0 1 2.5\n1 2 0.25\n"
	g, err := ReadEdgeList(strings.NewReader(in), EdgeListOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !g.Weighted() {
		t.Fatal("graph should be weighted")
	}
	if got := g.TotalEdgeWeight(); got != 2.75 {
		t.Fatalf("total weight %v", got)
	}
}

func TestReadEdgeListTemporal(t *testing.T) {
	in := "0 1 1 100\n1 2 1 200\n"
	g, err := ReadEdgeList(strings.NewReader(in), EdgeListOptions{Directed: true})
	if err != nil {
		t.Fatal(err)
	}
	if !g.Temporal() || !g.Directed() {
		t.Fatal("graph should be directed temporal")
	}
	if g.EdgeTimes(0)[0] != 100 {
		t.Fatalf("time = %d", g.EdgeTimes(0)[0])
	}
}

func TestReadEdgeListNamed(t *testing.T) {
	in := "LAX JFK\nJFK ORD\n"
	g, err := ReadEdgeList(strings.NewReader(in), EdgeListOptions{Named: true})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	if g.VertexByName("ORD") == -1 {
		t.Fatal("ORD missing")
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"0\n",       // too few fields
		"a b\n",     // non-integer without Named
		"-1 2\n",    // negative index
		"0 1 x\n",   // bad weight
		"0 1 1 x\n", // bad timestamp
	}
	for _, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in), EdgeListOptions{}); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g1, _ := CommunityBenchmark(CommunityBenchmarkConfig{
		NumCommunities: 3, CommunitySize: 10, Alpha: 0.5, InterEdges: 5, Seed: 2,
	})
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g1); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf, EdgeListOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumVertices() != g2.NumVertices() || g1.NumEdges() != g2.NumEdges() {
		t.Fatalf("round trip changed shape: %d/%d -> %d/%d",
			g1.NumVertices(), g1.NumEdges(), g2.NumVertices(), g2.NumEdges())
	}
	e1, e2 := g1.Edges(), g2.Edges()
	for i := range e1 {
		if e1[i].From != e2[i].From || e1[i].To != e2[i].To {
			t.Fatalf("edge %d differs after round trip", i)
		}
	}
}

func TestEdgeListRoundTripWeightedTemporal(t *testing.T) {
	b := NewBuilder(0)
	b.SetDirected(true)
	b.AddTemporalEdge(0, 1, 2.5, 10)
	b.AddTemporalEdge(1, 2, 1.25, 20)
	g1 := b.Build()
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g1); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf, EdgeListOptions{Directed: true})
	if err != nil {
		t.Fatal(err)
	}
	e := g2.Edges()
	if len(e) != 2 || e[0].Weight != 2.5 || e[0].Time != 10 {
		t.Fatalf("round trip lost attributes: %+v", e)
	}
}
