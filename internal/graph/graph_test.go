package graph

import (
	"sort"
	"testing"
	"testing/quick"

	"v2v/internal/xrand"
)

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0).Build()
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty graph has %d vertices, %d edges", g.NumVertices(), g.NumEdges())
	}
	edges := g.Edges()
	if len(edges) != 0 {
		t.Fatalf("empty graph returned %d edges", len(edges))
	}
}

func TestUndirectedBasics(t *testing.T) {
	b := NewBuilder(0)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	g := b.Build()

	if g.NumVertices() != 3 {
		t.Fatalf("NumVertices = %d, want 3", g.NumVertices())
	}
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3", g.NumEdges())
	}
	if g.Directed() {
		t.Fatal("graph should be undirected")
	}
	for v := 0; v < 3; v++ {
		if g.Degree(v) != 2 {
			t.Fatalf("Degree(%d) = %d, want 2", v, g.Degree(v))
		}
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("undirected edge should exist in both directions")
	}
	if g.HasEdge(0, 0) {
		t.Fatal("nonexistent self-loop reported")
	}
}

func TestDirectedBasics(t *testing.T) {
	b := NewBuilder(0)
	b.SetDirected(true)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.Build()

	if !g.Directed() {
		t.Fatal("graph should be directed")
	}
	if !g.HasEdge(0, 1) {
		t.Fatal("arc 0->1 missing")
	}
	if g.HasEdge(1, 0) {
		t.Fatal("arc 1->0 should not exist")
	}
	if g.Degree(0) != 1 || g.Degree(2) != 0 {
		t.Fatalf("out-degrees wrong: %d, %d", g.Degree(0), g.Degree(2))
	}
}

func TestNeighborsSorted(t *testing.T) {
	b := NewBuilder(0)
	b.AddEdge(0, 5)
	b.AddEdge(0, 2)
	b.AddEdge(0, 9)
	b.AddEdge(0, 1)
	g := b.Build()
	adj := g.Neighbors(0)
	if !sort.IntsAreSorted(adj) {
		t.Fatalf("adjacency not sorted: %v", adj)
	}
}

func TestWeightsPreserved(t *testing.T) {
	b := NewBuilder(0)
	b.AddWeightedEdge(0, 1, 2.5)
	b.AddWeightedEdge(1, 2, 0.5)
	g := b.Build()
	if !g.Weighted() {
		t.Fatal("graph should be weighted")
	}
	adj := g.Neighbors(1)
	ws := g.EdgeWeights(1)
	if len(adj) != 2 || len(ws) != 2 {
		t.Fatalf("vertex 1 adjacency %v weights %v", adj, ws)
	}
	for i, v := range adj {
		want := 2.5
		if v == 2 {
			want = 0.5
		}
		if ws[i] != want {
			t.Fatalf("weight to %d = %v, want %v", v, ws[i], want)
		}
	}
	if got := g.TotalEdgeWeight(); got != 3.0 {
		t.Fatalf("TotalEdgeWeight = %v, want 3", got)
	}
	if got := g.WeightedDegree(1); got != 3.0 {
		t.Fatalf("WeightedDegree(1) = %v, want 3", got)
	}
}

func TestTemporalPreserved(t *testing.T) {
	b := NewBuilder(0)
	b.AddTemporalEdge(0, 1, 1, 100)
	b.AddTemporalEdge(0, 2, 1, 50)
	g := b.Build()
	if !g.Temporal() {
		t.Fatal("graph should be temporal")
	}
	adj := g.Neighbors(0)
	times := g.EdgeTimes(0)
	for i, v := range adj {
		want := int64(100)
		if v == 2 {
			want = 50
		}
		if times[i] != want {
			t.Fatalf("time to %d = %d, want %d", v, times[i], want)
		}
	}
}

func TestVertexWeights(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.SetVertexWeight(1, 4)
	g := b.Build()
	if !g.HasVertexWeights() {
		t.Fatal("vertex weights missing")
	}
	if g.VertexWeight(1) != 4 {
		t.Fatalf("VertexWeight(1) = %v", g.VertexWeight(1))
	}
	if g.VertexWeight(0) != 1 {
		t.Fatalf("VertexWeight(0) = %v, want default 1", g.VertexWeight(0))
	}
	// Unweighted graph defaults to 1.
	g2 := NewBuilder(2).Build()
	if g2.VertexWeight(1) != 1 {
		t.Fatal("default vertex weight should be 1")
	}
}

func TestNamedVertices(t *testing.T) {
	b := NewBuilder(0)
	u := b.AddNamedVertex("LAX")
	v := b.AddNamedVertex("JFK")
	again := b.AddNamedVertex("LAX")
	if u != again {
		t.Fatalf("AddNamedVertex(LAX) twice gave %d then %d", u, again)
	}
	b.AddEdge(u, v)
	g := b.Build()
	if g.Name(u) != "LAX" || g.Name(v) != "JFK" {
		t.Fatalf("names wrong: %q %q", g.Name(u), g.Name(v))
	}
	if g.VertexByName("JFK") != v {
		t.Fatal("VertexByName(JFK) wrong")
	}
	if g.VertexByName("ORD") != -1 {
		t.Fatal("VertexByName of missing name should be -1")
	}
}

func TestNameDefaultsToIndex(t *testing.T) {
	g := NewBuilder(3).Build()
	if g.Name(2) != "2" {
		t.Fatalf("Name(2) = %q", g.Name(2))
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	b := NewBuilder(0)
	b.AddEdge(0, 1)
	b.AddEdge(2, 1)
	b.AddEdge(0, 3)
	g := b.Build()
	edges := g.Edges()
	if len(edges) != 3 {
		t.Fatalf("Edges returned %d, want 3", len(edges))
	}
	for _, e := range edges {
		if e.From >= e.To {
			t.Fatalf("undirected edge not canonical: %v", e)
		}
		if !g.HasEdge(e.From, e.To) {
			t.Fatalf("edge %v not in graph", e)
		}
	}
}

func TestDedup(t *testing.T) {
	b := NewBuilder(0)
	b.SetDeduplicate(true)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	b.AddEdge(0, 1)
	g := b.Build()
	if g.NumEdges() != 1 {
		t.Fatalf("dedup kept %d edges, want 1", g.NumEdges())
	}
}

func TestDedupDirectedKeepsBothDirections(t *testing.T) {
	b := NewBuilder(0)
	b.SetDirected(true)
	b.SetDeduplicate(true)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	b.AddEdge(0, 1)
	g := b.Build()
	if g.NumEdges() != 2 {
		t.Fatalf("directed dedup kept %d edges, want 2", g.NumEdges())
	}
}

func TestSelfLoopUndirected(t *testing.T) {
	b := NewBuilder(0)
	b.AddEdge(0, 0)
	b.AddEdge(0, 1)
	g := b.Build()
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
	// Self loop appears once in adjacency, not twice.
	count := 0
	for _, v := range g.Neighbors(0) {
		if v == 0 {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("self loop appears %d times in adjacency", count)
	}
}

func TestConnectedComponents(t *testing.T) {
	b := NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	g := b.Build()
	comp, n := g.ConnectedComponents()
	if n != 3 {
		t.Fatalf("components = %d, want 3 (triangle path, pair, singleton)", n)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Fatal("vertices 0-2 should share a component")
	}
	if comp[3] != comp[4] {
		t.Fatal("vertices 3,4 should share a component")
	}
	if comp[5] == comp[0] || comp[5] == comp[3] {
		t.Fatal("vertex 5 should be isolated")
	}
}

func TestConnectedComponentsDirectedIgnoresDirection(t *testing.T) {
	b := NewBuilder(0)
	b.SetDirected(true)
	b.AddEdge(0, 1)
	b.AddEdge(2, 1)
	g := b.Build()
	_, n := g.ConnectedComponents()
	if n != 1 {
		t.Fatalf("weak components = %d, want 1", n)
	}
}

func TestReverse(t *testing.T) {
	b := NewBuilder(0)
	b.SetDirected(true)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.Build()
	r := g.Reverse()
	if !r.HasEdge(1, 0) || !r.HasEdge(2, 1) {
		t.Fatal("reversed arcs missing")
	}
	if r.HasEdge(0, 1) {
		t.Fatal("original arc present in reverse")
	}
	// Undirected graphs reverse to themselves.
	u := NewBuilder(2)
	u.AddEdge(0, 1)
	ug := u.Build()
	if ug.Reverse() != ug {
		t.Fatal("undirected Reverse should return the receiver")
	}
}

func TestAdjacencyListsIsACopy(t *testing.T) {
	b := NewBuilder(0)
	b.AddEdge(0, 1)
	g := b.Build()
	adj := g.AdjacencyLists()
	adj[0][0] = 99
	if g.Neighbors(0)[0] == 99 {
		t.Fatal("AdjacencyLists aliases internal storage")
	}
}

// Property: for random undirected graphs, sum of degrees equals twice
// the edge count, and HasEdge is symmetric.
func TestDegreeSumProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 2 + rng.Intn(40)
		m := rng.Intn(n * (n - 1) / 2)
		g := ErdosRenyiGNM(n, m, seed)
		sum := 0
		for v := 0; v < n; v++ {
			sum += g.Degree(v)
		}
		if sum != 2*g.NumEdges() {
			return false
		}
		for u := 0; u < n; u++ {
			for _, v := range g.Neighbors(u) {
				if !g.HasEdge(v, u) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
