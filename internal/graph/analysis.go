package graph

import "fmt"

// BFSDistances returns the hop distance from source to every vertex
// (-1 when unreachable), following arc direction on directed graphs.
func (g *Graph) BFSDistances(source int) []int {
	n := g.NumVertices()
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[source] = 0
	queue := make([]int, 0, n)
	queue = append(queue, source)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(u) {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// ShortestPath returns one shortest u-v path as a vertex sequence, or
// nil when v is unreachable from u.
func (g *Graph) ShortestPath(u, v int) []int {
	if u == v {
		return []int{u}
	}
	n := g.NumVertices()
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	parent[u] = u
	queue := []int{u}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, y := range g.Neighbors(x) {
			if parent[y] >= 0 {
				continue
			}
			parent[y] = x
			if y == v {
				var path []int
				for cur := v; cur != u; cur = parent[cur] {
					path = append(path, cur)
				}
				path = append(path, u)
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return path
			}
			queue = append(queue, y)
		}
	}
	return nil
}

// Eccentricity returns the greatest hop distance from v to any
// reachable vertex.
func (g *Graph) Eccentricity(v int) int {
	ecc := 0
	for _, d := range g.BFSDistances(v) {
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// LocalClusteringCoefficient returns the fraction of v's neighbour
// pairs that are themselves connected (undirected graphs).
func (g *Graph) LocalClusteringCoefficient(v int) float64 {
	adj := g.Neighbors(v)
	d := len(adj)
	if d < 2 {
		return 0
	}
	links := 0
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			if adj[i] != v && adj[j] != v && g.HasEdge(adj[i], adj[j]) {
				links++
			}
		}
	}
	return 2 * float64(links) / float64(d*(d-1))
}

// AverageClusteringCoefficient returns the mean local clustering
// coefficient over all vertices.
func (g *Graph) AverageClusteringCoefficient() float64 {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	var sum float64
	for v := 0; v < n; v++ {
		sum += g.LocalClusteringCoefficient(v)
	}
	return sum / float64(n)
}

// DegreeHistogram returns counts[d] = number of vertices with
// (out-)degree d.
func (g *Graph) DegreeHistogram() []int {
	maxD := 0
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		if d := g.Degree(v); d > maxD {
			maxD = d
		}
	}
	counts := make([]int, maxD+1)
	for v := 0; v < n; v++ {
		counts[g.Degree(v)]++
	}
	return counts
}

// Density returns the fraction of possible edges present (simple
// undirected: m / C(n,2); directed: m / n(n-1)).
func (g *Graph) Density() float64 {
	n := g.NumVertices()
	if n < 2 {
		return 0
	}
	possible := float64(n) * float64(n-1)
	if !g.directed {
		possible /= 2
	}
	return float64(g.numEdges) / possible
}

// Subgraph returns the induced subgraph on the given vertices plus a
// mapping from new to old vertex indices. Edge weights and times are
// preserved; vertex order follows the input slice.
func (g *Graph) Subgraph(vertices []int) (*Graph, []int, error) {
	remap := make(map[int]int, len(vertices))
	for newID, v := range vertices {
		if v < 0 || v >= g.NumVertices() {
			return nil, nil, fmt.Errorf("graph: subgraph vertex %d out of range", v)
		}
		if _, dup := remap[v]; dup {
			return nil, nil, fmt.Errorf("graph: duplicate subgraph vertex %d", v)
		}
		remap[v] = newID
	}
	b := NewBuilder(len(vertices))
	b.SetDirected(g.directed)
	for _, u := range vertices {
		nu := remap[u]
		adj := g.Neighbors(u)
		ws := g.EdgeWeights(u)
		ts := g.EdgeTimes(u)
		for i, v := range adj {
			nv, ok := remap[v]
			if !ok {
				continue
			}
			if !g.directed && nu > nv {
				continue // count undirected edges once
			}
			switch {
			case g.temporal:
				w := 1.0
				if ws != nil {
					w = ws[i]
				}
				b.AddTemporalEdge(nu, nv, w, ts[i])
			case g.weighted:
				b.AddWeightedEdge(nu, nv, ws[i])
			default:
				b.AddEdge(nu, nv)
			}
		}
	}
	sub := b.Build()
	order := append([]int(nil), vertices...)
	return sub, order, nil
}
