package graph

import (
	"testing"
	"testing/quick"
)

func TestCommunityBenchmarkShape(t *testing.T) {
	cfg := DefaultCommunityBenchmark(0.5, 1)
	g, truth := CommunityBenchmark(cfg)
	if g.NumVertices() != 1000 {
		t.Fatalf("vertices = %d, want 1000", g.NumVertices())
	}
	if len(truth) != 1000 {
		t.Fatalf("truth length = %d", len(truth))
	}
	// alpha=0.5: 10 groups x floor(0.5*4950) = 24750 intra + 200 inter.
	want := 10*2475 + 200
	if g.NumEdges() != want {
		t.Fatalf("edges = %d, want %d (the paper's ~25000 at alpha=0.5)", g.NumEdges(), want)
	}
	// Ground truth: 100 vertices per community, labels 0..9.
	counts := make(map[int]int)
	for _, c := range truth {
		counts[c]++
	}
	if len(counts) != 10 {
		t.Fatalf("communities = %d, want 10", len(counts))
	}
	for c, n := range counts {
		if n != 100 {
			t.Fatalf("community %d has %d vertices", c, n)
		}
	}
}

func TestCommunityBenchmarkAlphaOneIsCliques(t *testing.T) {
	cfg := CommunityBenchmarkConfig{NumCommunities: 3, CommunitySize: 8, Alpha: 1, InterEdges: 2, Seed: 5}
	g, truth := CommunityBenchmark(cfg)
	// Every intra-community pair must be an edge.
	for u := 0; u < g.NumVertices(); u++ {
		for v := u + 1; v < g.NumVertices(); v++ {
			if truth[u] == truth[v] && !g.HasEdge(u, v) {
				t.Fatalf("alpha=1 but intra pair (%d,%d) missing", u, v)
			}
		}
	}
}

func TestCommunityBenchmarkInterEdgesCrossCommunities(t *testing.T) {
	cfg := CommunityBenchmarkConfig{NumCommunities: 4, CommunitySize: 10, Alpha: 0.3, InterEdges: 15, Seed: 9}
	g, truth := CommunityBenchmark(cfg)
	inter := 0
	for _, e := range g.Edges() {
		if truth[e.From] != truth[e.To] {
			inter++
		}
	}
	if inter != 15 {
		t.Fatalf("inter-community edges = %d, want 15", inter)
	}
}

func TestCommunityBenchmarkDeterministic(t *testing.T) {
	a, _ := CommunityBenchmark(DefaultCommunityBenchmark(0.3, 77))
	b, _ := CommunityBenchmark(DefaultCommunityBenchmark(0.3, 77))
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed produced different edge counts")
	}
	ea, eb := a.Edges(), b.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, ea[i], eb[i])
		}
	}
}

func TestCommunityBenchmarkEdgesDistinct(t *testing.T) {
	cfg := CommunityBenchmarkConfig{NumCommunities: 2, CommunitySize: 20, Alpha: 0.8, InterEdges: 10, Seed: 3}
	g, _ := CommunityBenchmark(cfg)
	seen := make(map[[2]int]bool)
	for _, e := range g.Edges() {
		k := [2]int{e.From, e.To}
		if seen[k] {
			t.Fatalf("duplicate edge %v", k)
		}
		seen[k] = true
	}
}

func TestUnrankPairBijective(t *testing.T) {
	seen := make(map[[2]int]bool)
	total := 15 * 14 / 2
	for r := 0; r < total; r++ {
		i, j := unrankPair(r)
		if i < 0 || j <= i || j >= 15 {
			t.Fatalf("unrankPair(%d) = (%d,%d) invalid", r, i, j)
		}
		k := [2]int{i, j}
		if seen[k] {
			t.Fatalf("unrankPair(%d) duplicates (%d,%d)", r, i, j)
		}
		seen[k] = true
	}
	if len(seen) != total {
		t.Fatalf("covered %d pairs of %d", len(seen), total)
	}
}

func TestIsqrtProperty(t *testing.T) {
	f := func(x uint64) bool {
		x %= 1 << 40
		r := isqrt(x)
		return r*r <= x && (r+1)*(r+1) > x
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestErdosRenyiGNM(t *testing.T) {
	g := ErdosRenyiGNM(50, 100, 4)
	if g.NumVertices() != 50 || g.NumEdges() != 100 {
		t.Fatalf("G(50,100): %d vertices %d edges", g.NumVertices(), g.NumEdges())
	}
	// Simple graph: no duplicates, no self loops.
	for _, e := range g.Edges() {
		if e.From == e.To {
			t.Fatal("self loop in GNM")
		}
	}
}

func TestErdosRenyiGNMComplete(t *testing.T) {
	g := ErdosRenyiGNM(6, 15, 1)
	if g.NumEdges() != 15 {
		t.Fatalf("complete G(6,15) has %d edges", g.NumEdges())
	}
	for u := 0; u < 6; u++ {
		if g.Degree(u) != 5 {
			t.Fatalf("degree %d != 5", g.Degree(u))
		}
	}
}

func TestErdosRenyiGNPDensity(t *testing.T) {
	g := ErdosRenyiGNP(200, 0.1, 8)
	max := 200 * 199 / 2
	got := float64(g.NumEdges()) / float64(max)
	if got < 0.07 || got > 0.13 {
		t.Fatalf("G(n,0.1) density = %.3f", got)
	}
}

func TestBarabasiAlbert(t *testing.T) {
	g := BarabasiAlbert(200, 3, 10)
	if g.NumVertices() != 200 {
		t.Fatalf("BA vertices = %d", g.NumVertices())
	}
	// m edges per new vertex after the initial star of 3.
	want := 3 + (200-4)*3
	if g.NumEdges() != want {
		t.Fatalf("BA edges = %d, want %d", g.NumEdges(), want)
	}
	// Preferential attachment produces a right-skewed degree
	// distribution: max degree far above the mean.
	maxDeg := 0
	for v := 0; v < 200; v++ {
		if d := g.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	mean := float64(2*g.NumEdges()) / 200
	if float64(maxDeg) < 3*mean {
		t.Fatalf("BA max degree %d not skewed vs mean %.1f", maxDeg, mean)
	}
}

func TestStructuredGenerators(t *testing.T) {
	if g := Ring(10); g.NumEdges() != 10 || g.Degree(0) != 2 {
		t.Fatalf("Ring(10): %d edges, degree %d", g.NumEdges(), g.Degree(0))
	}
	if g := Path(10); g.NumEdges() != 9 || g.Degree(0) != 1 || g.Degree(5) != 2 {
		t.Fatal("Path(10) malformed")
	}
	if g := Complete(7); g.NumEdges() != 21 || g.Degree(3) != 6 {
		t.Fatal("Complete(7) malformed")
	}
	if g := Star(9); g.NumEdges() != 8 || g.Degree(0) != 8 || g.Degree(1) != 1 {
		t.Fatal("Star(9) malformed")
	}
	if g := Grid(4, 5); g.NumVertices() != 20 || g.NumEdges() != 4*4+3*5 {
		t.Fatalf("Grid(4,5): %d vertices %d edges", g.NumVertices(), g.NumEdges())
	}
}

func TestTwoCliquesBridge(t *testing.T) {
	g, truth := TwoCliquesBridge(5)
	if g.NumVertices() != 10 {
		t.Fatal("wrong vertex count")
	}
	wantEdges := 2*10 + 1 // 2*C(5,2)+bridge
	if g.NumEdges() != wantEdges {
		t.Fatalf("edges = %d, want %d", g.NumEdges(), wantEdges)
	}
	if truth[0] != 0 || truth[9] != 1 {
		t.Fatal("truth labels wrong")
	}
	if !g.HasEdge(0, 5) {
		t.Fatal("bridge missing")
	}
}
