package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates edges and produces an immutable Graph. The zero
// value is usable as an empty undirected builder; NewBuilder
// preallocates vertex capacity.
type Builder struct {
	n        int
	directed bool
	weighted bool
	temporal bool
	dedup    bool

	edges []Edge

	vertexWeights []float64
	names         []string
	nameIndex     map[string]int
}

// NewBuilder returns a builder for an undirected graph with n vertices
// (more are added implicitly by AddEdge or EnsureVertex).
func NewBuilder(n int) *Builder {
	return &Builder{n: n}
}

// SetDirected marks the graph under construction as directed. It must
// be called before Build.
func (b *Builder) SetDirected(directed bool) *Builder {
	b.directed = directed
	return b
}

// SetDeduplicate requests that parallel edges (and, for undirected
// graphs, self-loops) be removed at Build time, keeping the first
// occurrence of each arc.
func (b *Builder) SetDeduplicate(dedup bool) *Builder {
	b.dedup = dedup
	return b
}

// NumVertices returns the current vertex count.
func (b *Builder) NumVertices() int { return b.n }

// NumEdges returns the number of edges added so far.
func (b *Builder) NumEdges() int { return len(b.edges) }

// EnsureVertex grows the vertex set so that v is a valid index.
func (b *Builder) EnsureVertex(v int) {
	if v >= b.n {
		b.n = v + 1
	}
}

// AddVertex appends a fresh vertex and returns its index.
func (b *Builder) AddVertex() int {
	v := b.n
	b.n++
	return v
}

// AddNamedVertex appends a fresh vertex with the given name and
// returns its index. If the name already exists, the existing index is
// returned instead.
func (b *Builder) AddNamedVertex(name string) int {
	if b.nameIndex == nil {
		b.nameIndex = make(map[string]int)
	}
	if v, ok := b.nameIndex[name]; ok {
		return v
	}
	v := b.AddVertex()
	for len(b.names) < v {
		b.names = append(b.names, fmt.Sprintf("%d", len(b.names)))
	}
	b.names = append(b.names, name)
	b.nameIndex[name] = v
	return v
}

// AddEdge adds an unweighted edge (arc, if directed) from u to v.
func (b *Builder) AddEdge(u, v int) {
	b.EnsureVertex(u)
	b.EnsureVertex(v)
	b.edges = append(b.edges, Edge{From: u, To: v, Weight: 1})
}

// AddWeightedEdge adds an edge with the given weight.
func (b *Builder) AddWeightedEdge(u, v int, w float64) {
	b.weighted = true
	b.EnsureVertex(u)
	b.EnsureVertex(v)
	b.edges = append(b.edges, Edge{From: u, To: v, Weight: w})
}

// AddTemporalEdge adds an edge with a weight and a timestamp.
func (b *Builder) AddTemporalEdge(u, v int, w float64, t int64) {
	b.weighted = b.weighted || w != 1
	b.temporal = true
	b.EnsureVertex(u)
	b.EnsureVertex(v)
	b.edges = append(b.edges, Edge{From: u, To: v, Weight: w, Time: t})
}

// SetVertexWeight records a weight for vertex v, used by
// vertex-weighted random walks.
func (b *Builder) SetVertexWeight(v int, w float64) {
	b.EnsureVertex(v)
	for len(b.vertexWeights) < b.n {
		b.vertexWeights = append(b.vertexWeights, 1)
	}
	b.vertexWeights[v] = w
}

// Build assembles the immutable Graph. The builder remains valid and
// may continue to accumulate edges for a later Build.
func (b *Builder) Build() *Graph {
	edges := b.edges
	if b.dedup {
		edges = dedupEdges(edges, b.directed)
	}

	g := &Graph{
		directed: b.directed,
		weighted: b.weighted,
		temporal: b.temporal,
		numEdges: len(edges),
	}

	n := b.n
	degree := make([]int, n)
	for _, e := range edges {
		degree[e.From]++
		if !b.directed && e.From != e.To {
			degree[e.To]++
		}
	}
	g.offsets = make([]int, n+1)
	for v := 0; v < n; v++ {
		g.offsets[v+1] = g.offsets[v] + degree[v]
	}
	arcs := g.offsets[n]
	g.targets = make([]int, arcs)
	if b.weighted {
		g.weights = make([]float64, arcs)
	}
	if b.temporal {
		g.times = make([]int64, arcs)
	}
	cursor := make([]int, n)
	copy(cursor, g.offsets[:n])
	place := func(u, v int, w float64, t int64) {
		i := cursor[u]
		cursor[u]++
		g.targets[i] = v
		if b.weighted {
			g.weights[i] = w
		}
		if b.temporal {
			g.times[i] = t
		}
	}
	for _, e := range edges {
		place(e.From, e.To, e.Weight, e.Time)
		if !b.directed && e.From != e.To {
			place(e.To, e.From, e.Weight, e.Time)
		}
	}

	// Sort each adjacency list by target (then time) so that HasEdge
	// can binary-search and iteration order is deterministic.
	for v := 0; v < n; v++ {
		lo, hi := g.offsets[v], g.offsets[v+1]
		sortAdjacency(g, lo, hi)
	}

	if b.vertexWeights != nil {
		vw := make([]float64, n)
		copy(vw, b.vertexWeights)
		for i := len(b.vertexWeights); i < n; i++ {
			vw[i] = 1
		}
		g.vertexWeights = vw
	}
	if b.names != nil {
		names := make([]string, n)
		copy(names, b.names)
		for i := len(b.names); i < n; i++ {
			names[i] = fmt.Sprintf("%d", i)
		}
		g.names = names
		idx := make(map[string]int, len(b.nameIndex))
		for k, v := range b.nameIndex {
			idx[k] = v
		}
		g.nameIndex = idx
	}
	return g
}

// sortAdjacency sorts the arc range [lo, hi) of g by (target, time),
// keeping the parallel weight/time arrays in step.
func sortAdjacency(g *Graph, lo, hi int) {
	span := adjSpan{g: g, lo: lo, n: hi - lo}
	sort.Sort(span)
}

type adjSpan struct {
	g  *Graph
	lo int
	n  int
}

func (s adjSpan) Len() int { return s.n }

func (s adjSpan) Less(i, j int) bool {
	g, a, b := s.g, s.lo+i, s.lo+j
	if g.targets[a] != g.targets[b] {
		return g.targets[a] < g.targets[b]
	}
	if g.times != nil {
		return g.times[a] < g.times[b]
	}
	return false
}

func (s adjSpan) Swap(i, j int) {
	g, a, b := s.g, s.lo+i, s.lo+j
	g.targets[a], g.targets[b] = g.targets[b], g.targets[a]
	if g.weights != nil {
		g.weights[a], g.weights[b] = g.weights[b], g.weights[a]
	}
	if g.times != nil {
		g.times[a], g.times[b] = g.times[b], g.times[a]
	}
}

// dedupEdges removes duplicate arcs. For undirected graphs the pair is
// canonicalised (min, max) first, so u-v and v-u are duplicates.
func dedupEdges(edges []Edge, directed bool) []Edge {
	type key struct{ u, v int }
	seen := make(map[key]bool, len(edges))
	out := make([]Edge, 0, len(edges))
	for _, e := range edges {
		u, v := e.From, e.To
		if !directed && u > v {
			u, v = v, u
		}
		k := key{u, v}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, e)
	}
	return out
}
