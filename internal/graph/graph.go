// Package graph provides the graph substrate used throughout the V2V
// reproduction: a compact immutable adjacency-array (CSR) graph type
// supporting directed and undirected graphs, edge weights, vertex
// weights and edge timestamps, together with builders, generators and
// edge-list I/O.
//
// Vertices are dense integer indices in [0, NumVertices()). Optional
// string names and per-vertex metadata labels can be attached for
// datasets such as the OpenFlights route network, where vertices carry
// country and continent attributes.
package graph

import (
	"fmt"
	"sort"
)

// Edge is a single (possibly weighted, possibly timestamped) edge.
// For undirected graphs an Edge represents the unordered pair
// {From, To}; the Graph stores both orientations internally.
type Edge struct {
	From, To int
	Weight   float64 // 1 for unweighted graphs
	Time     int64   // 0 when the graph has no timestamps
}

// Graph is an immutable graph in compressed sparse row form. Build one
// with a Builder or a generator. The zero value is an empty graph.
//
// For undirected graphs every edge appears in the adjacency of both
// endpoints; NumEdges still reports the number of undirected edges.
type Graph struct {
	directed bool
	weighted bool
	temporal bool

	offsets []int // length n+1; adjacency of v is arcs[offsets[v]:offsets[v+1]]
	targets []int
	weights []float64 // parallel to targets; nil when !weighted
	times   []int64   // parallel to targets; nil when !temporal

	vertexWeights []float64 // nil unless set; used by vertex-weighted walks
	names         []string  // nil unless set
	nameIndex     map[string]int

	numEdges int
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int {
	if len(g.offsets) == 0 {
		return 0
	}
	return len(g.offsets) - 1
}

// NumEdges returns the number of edges. For undirected graphs each
// undirected edge is counted once.
func (g *Graph) NumEdges() int { return g.numEdges }

// Directed reports whether the graph is directed.
func (g *Graph) Directed() bool { return g.directed }

// Weighted reports whether edges carry weights.
func (g *Graph) Weighted() bool { return g.weighted }

// Temporal reports whether edges carry timestamps.
func (g *Graph) Temporal() bool { return g.temporal }

// Degree returns the out-degree of v (degree, for undirected graphs).
func (g *Graph) Degree(v int) int { return g.offsets[v+1] - g.offsets[v] }

// Neighbors returns the adjacency slice of v. The returned slice
// aliases the graph's internal storage and must not be modified. For
// directed graphs these are the out-neighbours.
func (g *Graph) Neighbors(v int) []int {
	return g.targets[g.offsets[v]:g.offsets[v+1]]
}

// EdgeWeights returns the weights parallel to Neighbors(v), or nil for
// unweighted graphs. The slice aliases internal storage.
func (g *Graph) EdgeWeights(v int) []float64 {
	if !g.weighted {
		return nil
	}
	return g.weights[g.offsets[v]:g.offsets[v+1]]
}

// EdgeTimes returns the timestamps parallel to Neighbors(v), or nil
// for non-temporal graphs. The slice aliases internal storage.
func (g *Graph) EdgeTimes(v int) []int64 {
	if !g.temporal {
		return nil
	}
	return g.times[g.offsets[v]:g.offsets[v+1]]
}

// HasEdge reports whether an arc u->v exists (for undirected graphs,
// whether {u,v} is an edge). Adjacency lists are sorted by target at
// build time, so this is a binary search.
func (g *Graph) HasEdge(u, v int) bool {
	adj := g.Neighbors(u)
	i := sort.SearchInts(adj, v)
	return i < len(adj) && adj[i] == v
}

// VertexWeight returns the weight of v, defaulting to 1 when vertex
// weights were never set.
func (g *Graph) VertexWeight(v int) float64 {
	if g.vertexWeights == nil {
		return 1
	}
	return g.vertexWeights[v]
}

// HasVertexWeights reports whether vertex weights were provided.
func (g *Graph) HasVertexWeights() bool { return g.vertexWeights != nil }

// Name returns the string name of v, or its decimal index when no
// names were attached.
func (g *Graph) Name(v int) string {
	if g.names == nil {
		return fmt.Sprintf("%d", v)
	}
	return g.names[v]
}

// VertexByName returns the index of the named vertex, or -1.
func (g *Graph) VertexByName(name string) int {
	if g.nameIndex == nil {
		return -1
	}
	if v, ok := g.nameIndex[name]; ok {
		return v
	}
	return -1
}

// Edges returns all edges of the graph in a newly allocated slice.
// For undirected graphs each edge is reported once with From < To.
func (g *Graph) Edges() []Edge {
	edges := make([]Edge, 0, g.numEdges)
	n := g.NumVertices()
	for u := 0; u < n; u++ {
		adj := g.Neighbors(u)
		for i, v := range adj {
			if !g.directed && v < u {
				continue
			}
			e := Edge{From: u, To: v, Weight: 1}
			if g.weighted {
				e.Weight = g.weights[g.offsets[u]+i]
			}
			if g.temporal {
				e.Time = g.times[g.offsets[u]+i]
			}
			edges = append(edges, e)
		}
	}
	return edges
}

// AdjacencyLists returns a mutable deep copy of the adjacency
// structure, for algorithms (such as Girvan-Newman) that remove edges.
func (g *Graph) AdjacencyLists() [][]int {
	n := g.NumVertices()
	adj := make([][]int, n)
	for v := 0; v < n; v++ {
		src := g.Neighbors(v)
		adj[v] = append(make([]int, 0, len(src)), src...)
	}
	return adj
}

// TotalEdgeWeight returns the sum of edge weights (counting each
// undirected edge once). For unweighted graphs it equals NumEdges.
func (g *Graph) TotalEdgeWeight() float64 {
	if !g.weighted {
		return float64(g.numEdges)
	}
	var sum float64
	for _, w := range g.weights {
		sum += w
	}
	if !g.directed {
		sum /= 2
	}
	return sum
}

// WeightedDegree returns the sum of weights of edges incident to v
// (out-edges, for directed graphs).
func (g *Graph) WeightedDegree(v int) float64 {
	if !g.weighted {
		return float64(g.Degree(v))
	}
	var sum float64
	for _, w := range g.EdgeWeights(v) {
		sum += w
	}
	return sum
}

// ConnectedComponents returns a component index per vertex and the
// number of components, ignoring edge direction.
func (g *Graph) ConnectedComponents() (comp []int, count int) {
	n := g.NumVertices()
	comp = make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	// For directed graphs we need in-edges too; build a reverse view
	// lazily only if directed.
	var rev [][]int
	if g.directed {
		rev = make([][]int, n)
		for u := 0; u < n; u++ {
			for _, v := range g.Neighbors(u) {
				rev[v] = append(rev[v], u)
			}
		}
	}
	queue := make([]int, 0, n)
	for s := 0; s < n; s++ {
		if comp[s] >= 0 {
			continue
		}
		comp[s] = count
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, v := range g.Neighbors(u) {
				if comp[v] < 0 {
					comp[v] = count
					queue = append(queue, v)
				}
			}
			if g.directed {
				for _, v := range rev[u] {
					if comp[v] < 0 {
						comp[v] = count
						queue = append(queue, v)
					}
				}
			}
		}
		count++
	}
	return comp, count
}

// Reverse returns the graph with all arcs reversed. For undirected
// graphs it returns the receiver unchanged.
func (g *Graph) Reverse() *Graph {
	if !g.directed {
		return g
	}
	b := NewBuilder(g.NumVertices())
	b.SetDirected(true)
	for _, e := range g.Edges() {
		switch {
		case g.temporal:
			b.AddTemporalEdge(e.To, e.From, e.Weight, e.Time)
		case g.weighted:
			b.AddWeightedEdge(e.To, e.From, e.Weight)
		default:
			b.AddEdge(e.To, e.From)
		}
	}
	r := b.Build()
	r.vertexWeights = g.vertexWeights
	r.names = g.names
	r.nameIndex = g.nameIndex
	return r
}
