package graph

import "testing"

// BenchmarkBuild measures CSR assembly at the paper's benchmark
// size.
func BenchmarkBuild(b *testing.B) {
	proto, _ := CommunityBenchmark(DefaultCommunityBenchmark(0.5, 1))
	edges := proto.Edges()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bu := NewBuilder(proto.NumVertices())
		for _, e := range edges {
			bu.AddEdge(e.From, e.To)
		}
		bu.Build()
	}
}

// BenchmarkCommunityBenchmarkGen measures the synthetic generator.
func BenchmarkCommunityBenchmarkGen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		CommunityBenchmark(DefaultCommunityBenchmark(0.5, uint64(i)))
	}
}

// BenchmarkBarabasiAlbert measures preferential attachment.
func BenchmarkBarabasiAlbert(b *testing.B) {
	for i := 0; i < b.N; i++ {
		BarabasiAlbert(2000, 3, uint64(i))
	}
}

// BenchmarkBFSDistances measures single-source BFS.
func BenchmarkBFSDistances(b *testing.B) {
	g, _ := CommunityBenchmark(DefaultCommunityBenchmark(0.5, 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.BFSDistances(i % g.NumVertices())
	}
}

// BenchmarkHasEdge measures adjacency binary search.
func BenchmarkHasEdge(b *testing.B) {
	g, _ := CommunityBenchmark(DefaultCommunityBenchmark(0.5, 3))
	n := g.NumVertices()
	b.ResetTimer()
	var sink bool
	for i := 0; i < b.N; i++ {
		sink = g.HasEdge(i%n, (i*7)%n) || sink
	}
	_ = sink
}

// BenchmarkConnectedComponents measures the component labeller.
func BenchmarkConnectedComponents(b *testing.B) {
	g, _ := CommunityBenchmark(DefaultCommunityBenchmark(0.3, 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ConnectedComponents()
	}
}
