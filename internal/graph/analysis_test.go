package graph

import (
	"math"
	"testing"
)

func TestBFSDistancesPath(t *testing.T) {
	g := Path(5)
	d := g.BFSDistances(0)
	for v := 0; v < 5; v++ {
		if d[v] != v {
			t.Fatalf("dist(0,%d) = %d", v, d[v])
		}
	}
}

func TestBFSDistancesUnreachable(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	g := b.Build()
	d := g.BFSDistances(0)
	if d[2] != -1 {
		t.Fatalf("unreachable vertex has distance %d", d[2])
	}
}

func TestBFSDistancesDirected(t *testing.T) {
	b := NewBuilder(0)
	b.SetDirected(true)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.Build()
	if d := g.BFSDistances(2); d[0] != -1 {
		t.Fatal("directed BFS followed reverse arcs")
	}
	if d := g.BFSDistances(0); d[2] != 2 {
		t.Fatal("directed BFS distance wrong")
	}
}

func TestShortestPath(t *testing.T) {
	g := Ring(8)
	p := g.ShortestPath(0, 3)
	if len(p) != 4 || p[0] != 0 || p[3] != 3 {
		t.Fatalf("path %v", p)
	}
	for i := 1; i < len(p); i++ {
		if !g.HasEdge(p[i-1], p[i]) {
			t.Fatalf("path %v uses a non-edge", p)
		}
	}
	if p := g.ShortestPath(2, 2); len(p) != 1 || p[0] != 2 {
		t.Fatalf("self path %v", p)
	}
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	if p := b.Build().ShortestPath(0, 2); p != nil {
		t.Fatalf("unreachable path %v", p)
	}
}

func TestEccentricity(t *testing.T) {
	g := Path(5)
	if e := g.Eccentricity(0); e != 4 {
		t.Fatalf("ecc(0) = %d", e)
	}
	if e := g.Eccentricity(2); e != 2 {
		t.Fatalf("ecc(2) = %d", e)
	}
}

func TestClusteringCoefficient(t *testing.T) {
	// Triangle: every vertex has coefficient 1.
	g := Complete(3)
	if c := g.LocalClusteringCoefficient(0); c != 1 {
		t.Fatalf("triangle coefficient %v", c)
	}
	// Star: hub has coefficient 0 (no neighbour pairs connected).
	s := Star(5)
	if c := s.LocalClusteringCoefficient(0); c != 0 {
		t.Fatalf("star hub coefficient %v", c)
	}
	// Leaf (degree 1): defined as 0.
	if c := s.LocalClusteringCoefficient(1); c != 0 {
		t.Fatalf("leaf coefficient %v", c)
	}
	// Complete graph: average 1.
	if c := Complete(6).AverageClusteringCoefficient(); math.Abs(c-1) > 1e-12 {
		t.Fatalf("K6 average coefficient %v", c)
	}
	// Path: 0 everywhere.
	if c := Path(6).AverageClusteringCoefficient(); c != 0 {
		t.Fatalf("path average coefficient %v", c)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := Star(5) // degrees: 4,1,1,1,1
	h := g.DegreeHistogram()
	if h[1] != 4 || h[4] != 1 {
		t.Fatalf("histogram %v", h)
	}
	total := 0
	for _, c := range h {
		total += c
	}
	if total != 5 {
		t.Fatalf("histogram counts %d vertices", total)
	}
}

func TestDensity(t *testing.T) {
	if d := Complete(5).Density(); math.Abs(d-1) > 1e-12 {
		t.Fatalf("K5 density %v", d)
	}
	if d := NewBuilder(5).Build().Density(); d != 0 {
		t.Fatalf("edgeless density %v", d)
	}
	b := NewBuilder(0)
	b.SetDirected(true)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	if d := b.Build().Density(); math.Abs(d-1) > 1e-12 {
		t.Fatalf("directed K2 density %v", d)
	}
}

func TestSubgraph(t *testing.T) {
	g, truth := CommunityBenchmark(CommunityBenchmarkConfig{
		NumCommunities: 2, CommunitySize: 10, Alpha: 0.8, InterEdges: 3, Seed: 4,
	})
	// Extract community 0.
	var members []int
	for v, c := range truth {
		if c == 0 {
			members = append(members, v)
		}
	}
	sub, order, err := g.Subgraph(members)
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumVertices() != 10 {
		t.Fatalf("subgraph has %d vertices", sub.NumVertices())
	}
	// Every subgraph edge corresponds to an original edge.
	for _, e := range sub.Edges() {
		if !g.HasEdge(order[e.From], order[e.To]) {
			t.Fatal("subgraph edge not in original")
		}
	}
	// Every intra-community original edge survives.
	want := 0
	for _, e := range g.Edges() {
		if truth[e.From] == 0 && truth[e.To] == 0 {
			want++
		}
	}
	if sub.NumEdges() != want {
		t.Fatalf("subgraph edges %d, want %d", sub.NumEdges(), want)
	}
}

func TestSubgraphErrors(t *testing.T) {
	g := Ring(5)
	if _, _, err := g.Subgraph([]int{0, 9}); err == nil {
		t.Error("out-of-range vertex accepted")
	}
	if _, _, err := g.Subgraph([]int{0, 0}); err == nil {
		t.Error("duplicate vertex accepted")
	}
}

func TestSubgraphPreservesAttributes(t *testing.T) {
	b := NewBuilder(0)
	b.SetDirected(true)
	b.AddTemporalEdge(0, 1, 2.5, 7)
	b.AddTemporalEdge(1, 2, 1.5, 9)
	g := b.Build()
	sub, _, err := g.Subgraph([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	e := sub.Edges()
	if len(e) != 1 || e[0].Weight != 2.5 || e[0].Time != 7 {
		t.Fatalf("subgraph edges %+v", e)
	}
}
