package v2v

// One benchmark per table and figure of the paper's evaluation, plus
// ablation benchmarks for the design choices called out in DESIGN.md.
// Benchmarks use scaled-down workloads (see docs/EXPERIMENTS.md for
// the scale rationale); run `go run ./cmd/repro -scale paper` for
// paper-size regeneration.
//
// Quality numbers (precision, recall, accuracy) are attached to the
// benchmark output via b.ReportMetric so the shape of each figure is
// visible directly in `go test -bench` output.

import (
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"
)

const (
	benchCommunities   = 10
	benchCommunitySize = 40
	benchInterEdges    = 80
)

func benchGraph(b *testing.B, alpha float64) (*Graph, []int) {
	b.Helper()
	return CommunityBenchmark(BenchmarkConfig{
		NumCommunities: benchCommunities,
		CommunitySize:  benchCommunitySize,
		Alpha:          alpha,
		InterEdges:     benchInterEdges,
		Seed:           1,
	})
}

func benchOptions(dim int) Options {
	o := DefaultOptions(dim)
	o.WalksPerVertex = 6
	o.WalkLength = 40
	o.Epochs = 2
	o.Seed = 3
	return o
}

func embedBench(b *testing.B, g *Graph, opts Options) *Embedding {
	b.Helper()
	emb, err := Embed(g, opts)
	if err != nil {
		b.Fatal(err)
	}
	return emb
}

// ---- Table I --------------------------------------------------------

// BenchmarkTable1V2VPipeline measures the full V2V side of Table I at
// alpha = 0.5: walks + CBOW training + 100-restart k-means.
func BenchmarkTable1V2VPipeline(b *testing.B) {
	g, truth := benchGraph(b, 0.5)
	var lastP, lastR float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		emb := embedBench(b, g, benchOptions(10))
		res, err := emb.DetectCommunities(CommunityConfig{K: benchCommunities, Restarts: 100, Seed: 5})
		if err != nil {
			b.Fatal(err)
		}
		lastP, lastR, err = EvaluateCommunities(truth, res.Partition)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(lastP, "precision")
	b.ReportMetric(lastR, "recall")
}

// BenchmarkTable1V2VClusterOnly measures just the clustering phase
// (the paper's "less than 0.01 seconds" column).
func BenchmarkTable1V2VClusterOnly(b *testing.B) {
	g, _ := benchGraph(b, 0.5)
	emb := embedBench(b, g, benchOptions(10))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := emb.DetectCommunities(CommunityConfig{K: benchCommunities, Restarts: 100, Seed: 5}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1CNM measures the CNM column of Table I.
func BenchmarkTable1CNM(b *testing.B) {
	g, truth := benchGraph(b, 0.5)
	var lastP float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := CNM(g, CNMConfig{TargetK: benchCommunities})
		if err != nil {
			b.Fatal(err)
		}
		lastP, _, _ = EvaluateCommunities(truth, res.Partition)
	}
	b.ReportMetric(lastP, "precision")
}

// BenchmarkTable1GirvanNewman measures the Girvan-Newman column of
// Table I (dominates the benchmark suite's runtime, as in the paper).
func BenchmarkTable1GirvanNewman(b *testing.B) {
	g, truth := benchGraph(b, 0.5)
	var lastP float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := GirvanNewman(g, GNConfig{TargetK: benchCommunities})
		if err != nil {
			b.Fatal(err)
		}
		lastP, _, _ = EvaluateCommunities(truth, res.Partition)
	}
	b.ReportMetric(lastP, "precision")
}

// BenchmarkTable1GraphSizeScaling shows the edge-count scaling the
// paper notes: graph-algorithm runtime grows with alpha while V2V
// training does not grow proportionally.
func BenchmarkTable1GraphSizeScaling(b *testing.B) {
	for _, alpha := range []float64{0.1, 0.5, 1.0} {
		g, _ := benchGraph(b, alpha)
		b.Run("cnm/alpha="+ftoa(alpha), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := CNM(g, CNMConfig{TargetK: benchCommunities}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("v2v/alpha="+ftoa(alpha), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				embedBench(b, g, benchOptions(10))
			}
		})
	}
}

// ---- Figure 3 -------------------------------------------------------

// BenchmarkFig3ForceLayout measures the ForceAtlas2-style layout used
// to draw the benchmark graphs.
func BenchmarkFig3ForceLayout(b *testing.B) {
	g, _ := benchGraph(b, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ForceLayout(g, LayoutConfig{Iterations: 50, Seed: 7})
	}
}

// ---- Figure 4 -------------------------------------------------------

// BenchmarkFig4PCAScatter measures PCA projection of an embedding to
// 2-D (the Figure 4 pathway).
func BenchmarkFig4PCAScatter(b *testing.B) {
	g, _ := benchGraph(b, 0.1)
	emb := embedBench(b, g, benchOptions(50))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := emb.ProjectPCA(2, 9); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Figures 5 and 6 -------------------------------------------------

// BenchmarkFig5PrecisionVsAlpha runs one cell of the Figure 5 grid
// (alpha = 0.3, dim = 50) and reports its precision.
func BenchmarkFig5PrecisionVsAlpha(b *testing.B) {
	g, truth := benchGraph(b, 0.3)
	var lastP float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		emb := embedBench(b, g, benchOptions(50))
		res, err := emb.DetectCommunities(CommunityConfig{K: benchCommunities, Restarts: 100, Seed: 5})
		if err != nil {
			b.Fatal(err)
		}
		lastP, _, _ = EvaluateCommunities(truth, res.Partition)
	}
	b.ReportMetric(lastP, "precision")
}

// BenchmarkFig6RecallVsAlpha runs the matching Figure 6 cell and
// reports recall.
func BenchmarkFig6RecallVsAlpha(b *testing.B) {
	g, truth := benchGraph(b, 0.3)
	var lastR float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		emb := embedBench(b, g, benchOptions(50))
		res, err := emb.DetectCommunities(CommunityConfig{K: benchCommunities, Restarts: 100, Seed: 5})
		if err != nil {
			b.Fatal(err)
		}
		_, lastR, _ = EvaluateCommunities(truth, res.Partition)
	}
	b.ReportMetric(lastR, "recall")
}

// ---- Figure 7 -------------------------------------------------------

// BenchmarkFig7ConvergenceTraining measures convergence-stopped
// training at weak vs strong community structure; the strong case
// should need fewer epochs (the figure's falling curve).
func BenchmarkFig7ConvergenceTraining(b *testing.B) {
	for _, alpha := range []float64{0.1, 1.0} {
		g, _ := benchGraph(b, alpha)
		b.Run("alpha="+ftoa(alpha), func(b *testing.B) {
			var epochs int
			for i := 0; i < b.N; i++ {
				o := benchOptions(50)
				o.Epochs = 30
				o.ConvergenceTol = 0.02
				emb := embedBench(b, g, o)
				epochs = emb.Stats.Epochs
			}
			b.ReportMetric(float64(epochs), "epochs")
		})
	}
}

// ---- Figure 8 -------------------------------------------------------

// BenchmarkFig8OpenFlights measures embedding + 3-component PCA of
// the synthetic route network.
func BenchmarkFig8OpenFlights(b *testing.B) {
	ds, err := GenerateOpenFlights(OpenFlightsConfig{
		NumAirports: 600, NumRegions: 6, CountriesPerRegion: 5,
		HubFraction: 20, IntlDegree: 5, TrunkDegree: 3, Seed: 11,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		emb := embedBench(b, ds.Graph, benchOptions(50))
		if _, _, err := emb.ProjectPCA(3, 13); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Figures 9 and 10 ------------------------------------------------

// BenchmarkFig9AccuracyVsDim runs one cell of the Figure 9 grid
// (dim = 50, k = 3 country prediction) and reports accuracy.
func BenchmarkFig9AccuracyVsDim(b *testing.B) {
	ds, err := GenerateOpenFlights(OpenFlightsConfig{
		NumAirports: 600, NumRegions: 6, CountriesPerRegion: 5,
		HubFraction: 20, IntlDegree: 5, TrunkDegree: 3, Seed: 11,
	})
	if err != nil {
		b.Fatal(err)
	}
	emb := embedBench(b, ds.Graph, benchOptions(50))
	var acc float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc, err = emb.CrossValidateLabels(ds.Country, 3, 10, 15)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(acc, "accuracy")
}

// BenchmarkFig10AccuracyVsK sweeps k = 1 and k = 10 at fixed
// dimension (the endpoints of Figure 10's x axis).
func BenchmarkFig10AccuracyVsK(b *testing.B) {
	ds, err := GenerateOpenFlights(OpenFlightsConfig{
		NumAirports: 600, NumRegions: 6, CountriesPerRegion: 5,
		HubFraction: 20, IntlDegree: 5, TrunkDegree: 3, Seed: 11,
	})
	if err != nil {
		b.Fatal(err)
	}
	emb := embedBench(b, ds.Graph, benchOptions(50))
	for _, k := range []int{1, 10} {
		b.Run("k="+itoa(k), func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				acc, err = emb.CrossValidateLabels(ds.Country, k, 10, 15)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(acc, "accuracy")
		})
	}
}

// ---- Ablations (design choices from DESIGN.md) -----------------------

// BenchmarkAblationObjective compares CBOW (the paper) with SkipGram
// (DeepWalk/node2vec) at identical budgets.
func BenchmarkAblationObjective(b *testing.B) {
	g, truth := benchGraph(b, 0.5)
	for _, obj := range []Objective{CBOW, SkipGram} {
		b.Run(obj.String(), func(b *testing.B) {
			var lastP float64
			for i := 0; i < b.N; i++ {
				o := benchOptions(16)
				o.Objective = obj
				emb := embedBench(b, g, o)
				res, err := emb.DetectCommunities(CommunityConfig{K: benchCommunities, Restarts: 30, Seed: 5})
				if err != nil {
					b.Fatal(err)
				}
				lastP, _, _ = EvaluateCommunities(truth, res.Partition)
			}
			b.ReportMetric(lastP, "precision")
		})
	}
}

// BenchmarkAblationSampler compares negative sampling with
// hierarchical softmax.
func BenchmarkAblationSampler(b *testing.B) {
	g, _ := benchGraph(b, 0.5)
	for _, s := range []SamplerKind{NegativeSampling, HierarchicalSoftmax} {
		b.Run(s.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				o := benchOptions(16)
				o.Sampler = s
				embedBench(b, g, o)
			}
		})
	}
}

// BenchmarkAblationWalkBudget varies the walk budget t (walks per
// vertex), the paper's main cost knob.
func BenchmarkAblationWalkBudget(b *testing.B) {
	g, truth := benchGraph(b, 0.5)
	for _, t := range []int{2, 6, 18} {
		b.Run("walks="+itoa(t), func(b *testing.B) {
			var lastP float64
			for i := 0; i < b.N; i++ {
				o := benchOptions(16)
				o.WalksPerVertex = t
				emb := embedBench(b, g, o)
				res, err := emb.DetectCommunities(CommunityConfig{K: benchCommunities, Restarts: 30, Seed: 5})
				if err != nil {
					b.Fatal(err)
				}
				lastP, _, _ = EvaluateCommunities(truth, res.Partition)
			}
			b.ReportMetric(lastP, "precision")
		})
	}
}

// BenchmarkAblationWalkStrategy compares uniform walks (the paper)
// with node2vec's biased second-order walks.
func BenchmarkAblationWalkStrategy(b *testing.B) {
	g, _ := benchGraph(b, 0.5)
	configs := map[string]func(*Options){
		"uniform":  func(o *Options) { o.Strategy = UniformWalk },
		"node2vec": func(o *Options) { o.Strategy = Node2VecWalk; o.ReturnParam = 1; o.InOutParam = 0.5 },
	}
	for name, mod := range configs {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				o := benchOptions(16)
				mod(&o)
				embedBench(b, g, o)
			}
		})
	}
}

// BenchmarkAblationKMeansRestarts varies the restart count against
// the paper's 100.
func BenchmarkAblationKMeansRestarts(b *testing.B) {
	g, truth := benchGraph(b, 0.5)
	emb := embedBench(b, g, benchOptions(10))
	for _, restarts := range []int{1, 10, 100} {
		b.Run("restarts="+itoa(restarts), func(b *testing.B) {
			var lastP float64
			for i := 0; i < b.N; i++ {
				res, err := emb.DetectCommunities(CommunityConfig{K: benchCommunities, Restarts: restarts, Seed: 5})
				if err != nil {
					b.Fatal(err)
				}
				lastP, _, _ = EvaluateCommunities(truth, res.Partition)
			}
			b.ReportMetric(lastP, "precision")
		})
	}
}

// BenchmarkAblationParallelism measures walk+train throughput with 1
// worker vs all cores (the Hogwild scaling the repro=4 band is
// about).
func BenchmarkAblationParallelism(b *testing.B) {
	g, _ := benchGraph(b, 0.5)
	for _, workers := range []int{1, 0} { // 0 = GOMAXPROCS
		name := "workers=1"
		if workers == 0 {
			name = "workers=all"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				o := benchOptions(32)
				o.Workers = workers
				embedBench(b, g, o)
			}
		})
	}
}

// ---- Streaming pipeline (docs/STREAMING.md) --------------------------

// streamBench caches a ~1M-edge Barabási–Albert graph (100k vertices,
// m = 10) shared by the streaming benchmarks; -short scales it down.
var streamBench struct {
	once sync.Once
	g    *Graph
}

func streamBenchGraph(b *testing.B) *Graph {
	b.Helper()
	streamBench.once.Do(func() {
		n, m := 100_000, 10
		if testing.Short() {
			n, m = 10_000, 5
		}
		streamBench.g = BarabasiAlbert(n, m, 42)
	})
	return streamBench.g
}

func streamBenchOptions() Options {
	o := DefaultOptions(8)
	o.WalksPerVertex = 1
	o.WalkLength = 40
	o.Epochs = 1
	o.Seed = 42
	return o
}

// BenchmarkWalkStageMaterialized measures the corpus stage of the
// original pipeline on the 1M-edge graph: every token is buffered
// before training can start, so B/op grows with the walk budget.
func BenchmarkWalkStageMaterialized(b *testing.B) {
	g := streamBenchGraph(b)
	opts := streamBenchOptions()
	var tokens int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := GenerateWalks(g, opts)
		if err != nil {
			b.Fatal(err)
		}
		tokens = c.NumTokens()
	}
	b.ReportMetric(float64(tokens)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mtokens/s")
}

// BenchmarkWalkStageStreaming drains the identical walks through the
// stream's bounded buffers, sharded over GOMAXPROCS consumers like the
// fused trainer: B/op is workers x StreamDepth x StreamBatch x Length,
// independent of the total token count.
func BenchmarkWalkStageStreaming(b *testing.B) {
	g := streamBenchGraph(b)
	opts := streamBenchOptions()
	var tokens int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := StreamWalks(g, opts)
		if err != nil {
			b.Fatal(err)
		}
		workers := runtime.GOMAXPROCS(0)
		numWalks := s.NumWalks()
		counts := make([]int64, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := w * numWalks / workers
			hi := (w + 1) * numWalks / workers
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				for walk := range s.WalkSeq(lo, hi) {
					counts[w] += int64(len(walk))
				}
			}(w, lo, hi)
		}
		wg.Wait()
		tokens = 0
		for _, c := range counts {
			tokens += c
		}
	}
	b.ReportMetric(float64(tokens)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mtokens/s")
}

// BenchmarkPipeline1MEdges runs the full walk+train pipeline on the
// 1M-edge graph both ways. The streaming path never materializes the
// corpus (it pays one extra walk sweep for the counting pass instead),
// so peakHeapMB — the maximum heap in use, sampled every 10ms during
// the run — stays at the model matrices' floor while the materialized
// path's peak additionally carries the full token corpus.
func BenchmarkPipeline1MEdges(b *testing.B) {
	g := streamBenchGraph(b)
	for _, streaming := range []bool{false, true} {
		name := "materialized"
		if streaming {
			name = "streaming"
		}
		b.Run(name, func(b *testing.B) {
			opts := streamBenchOptions()
			opts.Streaming = streaming
			runtime.GC()
			stop := make(chan struct{})
			var peak uint64
			var samplerWg sync.WaitGroup
			samplerWg.Add(1)
			go func() {
				defer samplerWg.Done()
				var ms runtime.MemStats
				t := time.NewTicker(10 * time.Millisecond)
				defer t.Stop()
				for {
					select {
					case <-stop:
						return
					case <-t.C:
						runtime.ReadMemStats(&ms)
						if ms.HeapInuse > peak {
							peak = ms.HeapInuse
						}
					}
				}
			}()
			var emb *Embedding
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				emb, err = Embed(g, opts)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			close(stop)
			samplerWg.Wait()
			b.ReportMetric(float64(emb.Tokens)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mtokens/s")
			b.ReportMetric(float64(peak)/(1<<20), "peakHeapMB")
		})
	}
}

// ---- helpers ---------------------------------------------------------

func ftoa(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

func itoa(i int) string { return strconv.Itoa(i) }
