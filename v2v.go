// Package v2v is the public API of the V2V reproduction: vertex
// embeddings of graphs learned from constrained random walks with a
// CBOW (word2vec) model, plus the embedding-space applications studied
// by the paper — community detection, visualization and feature
// prediction — and the direct graph-based baselines (CNM,
// Girvan-Newman) they are compared against.
//
// Reproduces: Nguyen & Tirthapura, "V2V: Vector Embedding of a Graph
// and Applications", IPDPSW 2018.
//
// Quickstart:
//
//	g, truth := v2v.CommunityBenchmark(v2v.DefaultBenchmarkConfig(0.5, 1))
//	emb, err := v2v.Embed(g, v2v.DefaultOptions(50))
//	if err != nil { ... }
//	res, err := emb.DetectCommunities(v2v.CommunityConfig{K: 10})
//	prec, rec, _ := v2v.EvaluateCommunities(truth, res.Partition)
package v2v

import (
	"context"
	"fmt"
	"io"

	"v2v/internal/cluster"
	"v2v/internal/community"
	"v2v/internal/core"
	"v2v/internal/graph"
	"v2v/internal/knn"
	"v2v/internal/linalg"
	"v2v/internal/linkpred"
	"v2v/internal/metrics"
	"v2v/internal/openflights"
	"v2v/internal/server"
	"v2v/internal/snapshot"
	"v2v/internal/spectral"
	"v2v/internal/tsne"
	"v2v/internal/vecstore"
	"v2v/internal/viz"
	"v2v/internal/walk"
	"v2v/internal/word2vec"
)

// ---- Graphs -------------------------------------------------------

// Graph is an immutable CSR graph; build one with NewGraphBuilder, a
// generator, or ReadEdgeList.
type Graph = graph.Graph

// GraphBuilder accumulates edges and produces a Graph.
type GraphBuilder = graph.Builder

// Edge is a single edge of a Graph.
type Edge = graph.Edge

// NewGraphBuilder returns a builder for an undirected graph with n
// initial vertices.
func NewGraphBuilder(n int) *GraphBuilder { return graph.NewBuilder(n) }

// EdgeListOptions controls ReadEdgeList parsing.
type EdgeListOptions = graph.EdgeListOptions

// ReadEdgeList parses a "u v [weight [time]]" edge list.
func ReadEdgeList(r io.Reader, opts EdgeListOptions) (*Graph, error) {
	return graph.ReadEdgeList(r, opts)
}

// WriteEdgeList writes g in the format accepted by ReadEdgeList.
func WriteEdgeList(w io.Writer, g *Graph) error { return graph.WriteEdgeList(w, g) }

// BenchmarkConfig describes the paper's synthetic community
// benchmark (Section III-A).
type BenchmarkConfig = graph.CommunityBenchmarkConfig

// DefaultBenchmarkConfig returns the paper's benchmark at the given
// community strength alpha: 10 communities x 100 vertices, 200
// inter-community edges.
func DefaultBenchmarkConfig(alpha float64, seed uint64) BenchmarkConfig {
	return graph.DefaultCommunityBenchmark(alpha, seed)
}

// CommunityBenchmark generates the synthetic benchmark graph and its
// ground-truth community of every vertex.
func CommunityBenchmark(cfg BenchmarkConfig) (*Graph, []int) {
	return graph.CommunityBenchmark(cfg)
}

// ErdosRenyiGNM generates a uniform random graph with n vertices and
// m edges.
func ErdosRenyiGNM(n, m int, seed uint64) *Graph { return graph.ErdosRenyiGNM(n, m, seed) }

// ErdosRenyiGNP generates G(n, p).
func ErdosRenyiGNP(n int, p float64, seed uint64) *Graph { return graph.ErdosRenyiGNP(n, p, seed) }

// BarabasiAlbert generates a preferential-attachment graph.
func BarabasiAlbert(n, m int, seed uint64) *Graph { return graph.BarabasiAlbert(n, m, seed) }

// ---- Embedding ----------------------------------------------------

// WalkStrategy selects the random-walk transition rule.
type WalkStrategy = walk.Strategy

// Walk strategies (paper Section II-A).
const (
	UniformWalk        = walk.Uniform
	EdgeWeightedWalk   = walk.EdgeWeighted
	VertexWeightedWalk = walk.VertexWeighted
	TemporalWalk       = walk.Temporal
	Node2VecWalk       = walk.Node2Vec
)

// Objective selects the word2vec prediction task.
type Objective = word2vec.Objective

// Objectives; the paper uses CBOW.
const (
	CBOW     = word2vec.CBOW
	SkipGram = word2vec.SkipGram
)

// SamplerKind selects the word2vec output-layer approximation.
type SamplerKind = word2vec.Sampler

// Output-layer samplers.
const (
	NegativeSampling    = word2vec.NegativeSampling
	HierarchicalSoftmax = word2vec.HierarchicalSoftmax
)

// Options are the end-to-end V2V hyper-parameters.
type Options struct {
	// Random walks (paper defaults: WalksPerVertex = WalkLength = 1000).
	WalksPerVertex int
	WalkLength     int
	Strategy       WalkStrategy
	TemporalWindow int64   // Temporal strategy: max gap between edges
	ReturnParam    float64 // Node2Vec p
	InOutParam     float64 // Node2Vec q

	// Model (paper defaults: CBOW, window 5).
	Dim             int
	Window          int
	Objective       Objective
	Sampler         SamplerKind
	NegativeSamples int
	LearningRate    float64
	Epochs          int
	ConvergenceTol  float64 // > 0 enables convergence-based stopping
	Subsample       float64

	Seed    uint64
	Workers int

	// Streaming selects the fused walk→train pipeline: walks are
	// re-derived from their deterministic per-walk RNG streams each
	// epoch and consumed through bounded buffers instead of being
	// materialized up front, so corpus memory no longer grows with the
	// walk budget. Same seed, same embedding (bit-identical with
	// Workers = 1). StreamBatch and StreamDepth tune the buffers
	// (walks per batch, batches per worker; zero = defaults 64 and 2).
	// See docs/STREAMING.md.
	Streaming   bool
	StreamBatch int
	StreamDepth int

	// Index selects the similarity index serving the embedding's
	// query paths (Embedding.Neighbors, missing-label prediction):
	// the zero value is the exact scan; {Kind: IVFIndex, NProbe: n}
	// trades exactness for nprobe-pruned approximate search and
	// {Kind: HNSWIndex} for sublinear graph search. See
	// docs/VECTORS.md and docs/INDEXES.md.
	Index IndexConfig
}

// DefaultOptions returns the paper's configuration at the given
// dimensionality, with a laptop-scale walk budget (raise
// WalksPerVertex and WalkLength toward 1000 for paper scale).
func DefaultOptions(dim int) Options {
	return Options{
		WalksPerVertex:  10,
		WalkLength:      80,
		Strategy:        UniformWalk,
		Dim:             dim,
		Window:          5,
		Objective:       CBOW,
		Sampler:         NegativeSampling,
		NegativeSamples: 5,
		Epochs:          3,
	}
}

func (o Options) coreConfig() core.Config {
	return core.Config{
		Walk: walk.Config{
			WalksPerVertex: o.WalksPerVertex,
			Length:         o.WalkLength,
			Strategy:       o.Strategy,
			TemporalWindow: o.TemporalWindow,
			ReturnParam:    o.ReturnParam,
			InOutParam:     o.InOutParam,
			Seed:           o.Seed,
			Workers:        o.Workers,
			StreamBatch:    o.StreamBatch,
			StreamDepth:    o.StreamDepth,
		},
		Model: word2vec.Config{
			Dim:             o.Dim,
			Window:          o.Window,
			Objective:       o.Objective,
			Sampler:         o.Sampler,
			NegativeSamples: o.NegativeSamples,
			LearningRate:    o.LearningRate,
			Epochs:          o.Epochs,
			ConvergenceTol:  o.ConvergenceTol,
			Subsample:       o.Subsample,
			Workers:         o.Workers,
			Seed:            o.Seed,
		},
		Streaming: o.Streaming,
		Index:     o.Index,
	}
}

// Embedding is a trained V2V model bound to its graph.
type Embedding = core.Embedding

// TrainStats reports what happened during training.
type TrainStats = word2vec.Stats

// Model is the raw embedding matrix with similarity helpers.
type Model = word2vec.Model

// EmbeddingNeighbor is a similarity search result.
type EmbeddingNeighbor = word2vec.Neighbor

// Embed runs the V2V pipeline (random walks, then CBOW/SkipGram
// training) on g.
func Embed(g *Graph, opts Options) (*Embedding, error) {
	return core.Embed(g, opts.coreConfig())
}

// EmbedStreaming runs the fused streaming pipeline on g regardless of
// opts.Streaming: walks are generated on the fly and never
// materialized, bounding corpus memory by the stream buffers instead
// of the walk budget. Equivalent to Embed with opts.Streaming = true.
func EmbedStreaming(g *Graph, opts Options) (*Embedding, error) {
	cfg := opts.coreConfig()
	cfg.Streaming = true
	return core.EmbedStreaming(g, cfg)
}

// WalkStream is a streaming walk corpus: walks are re-derived on
// demand from their deterministic per-walk RNG streams, byte-identical
// to the materialized WalkCorpus under the same options.
type WalkStream = walk.Stream

// StreamWalks returns the streaming counterpart of GenerateWalks. No
// walks are generated until the stream is consumed.
func StreamWalks(g *Graph, opts Options) (*WalkStream, error) {
	return walk.NewStream(g, opts.coreConfig().Walk)
}

// EmbedWalkStream trains an embedding on a pre-built walk stream, the
// streaming counterpart of EmbedWalks: several models (e.g. a
// dimension sweep) can share one stream the way they would share one
// corpus, training on identical walks without materializing them.
// Only the model fields of opts are consulted.
func EmbedWalkStream(g *Graph, stream *WalkStream, opts Options) (*Embedding, error) {
	return core.EmbedStream(g, stream, opts.coreConfig())
}

// WalkCorpus is a generated set of random walks. It can be saved,
// reloaded and reused to train models of several dimensionalities on
// identical contexts, as the paper's Figure 9 experiment does.
type WalkCorpus = walk.Corpus

// GenerateWalks runs only the walk phase of the pipeline.
func GenerateWalks(g *Graph, opts Options) (*WalkCorpus, error) {
	corpus, _, err := core.GenerateCorpus(g, opts.coreConfig().Walk)
	return corpus, err
}

// EmbedWalks trains an embedding on a pre-generated corpus; only the
// model fields of opts are consulted.
func EmbedWalks(g *Graph, corpus *WalkCorpus, opts Options) (*Embedding, error) {
	return core.EmbedCorpus(g, corpus, opts.coreConfig())
}

// LoadWalks reads a corpus written with WalkCorpus.Save.
func LoadWalks(r io.Reader) (*WalkCorpus, error) { return walk.LoadCorpus(r) }

// LoadModel reads embeddings in either persistence format — the
// word2vec text format written by Model.Save, or the binary snapshot
// written by SaveSnapshot — auto-detected from the stream's first
// bytes. Snapshot loading is ~10x faster; see docs/SERVING.md.
func LoadModel(r io.Reader) (*Model, []string, error) { return snapshot.LoadAuto(r) }

// SaveSnapshot writes the model and its token table in the versioned
// binary snapshot format: a magic/version header, the tokens, the raw
// little-endian float32 matrix and a trailing CRC-32. tokens may be
// nil (rows are named by decimal index, matching Model.Save). The
// fast-startup format behind `v2v serve` and `v2v -format bin`.
func SaveSnapshot(w io.Writer, m *Model, tokens []string) error {
	return snapshot.Save(w, m, tokens)
}

// LoadSnapshot reads a binary snapshot written by SaveSnapshot,
// verifying its checksum. Use LoadModel to accept either format.
func LoadSnapshot(r io.Reader) (*Model, []string, error) { return snapshot.Load(r) }

// SaveIndexedSnapshot writes a bundle: the model snapshot followed by
// the topology of a prebuilt HNSW index (its own magic, version and
// CRC-32 section). A server or query CLI loading the bundle with an
// HNSW index configuration binds the persisted graph instead of
// re-inserting every row — startup cost becomes a bounds-checked
// read. idx must be an HNSW index over m's store (built with NewIndex
// and Kind: HNSWIndex) — or a sharded HNSW coordinator (Shards > 1),
// whose per-shard graphs are written as a sharded bundle that a
// matching configuration rebinds the same way. See docs/INDEXES.md.
func SaveIndexedSnapshot(w io.Writer, m *Model, tokens []string, idx Index) error {
	switch h := idx.(type) {
	case *vecstore.HNSW:
		return snapshot.SaveBundle(w, m, tokens, h.Graph())
	case *vecstore.Sharded:
		graphs, err := h.Graphs()
		if err != nil {
			return fmt.Errorf("v2v: SaveIndexedSnapshot: %w", err)
		}
		return snapshot.SaveShardedBundle(w, m, tokens, graphs)
	default:
		return fmt.Errorf("v2v: SaveIndexedSnapshot needs an HNSW index, got %T (exact and IVF indexes rebuild quickly and are not persisted)", idx)
	}
}

// SaveIndexedSnapshotFile writes the bundle to path atomically
// (same-directory temp file and rename, like SaveFile), so a crash
// mid-write never leaves a half-bundle at the target — the invariant
// the hot-reload deploy loop depends on. Prefer this over
// SaveIndexedSnapshot for files the server reloads from.
func SaveIndexedSnapshotFile(path string, m *Model, tokens []string, idx Index) error {
	switch h := idx.(type) {
	case *vecstore.HNSW:
		return snapshot.SaveBundleFile(path, m, tokens, h.Graph())
	case *vecstore.Sharded:
		graphs, err := h.Graphs()
		if err != nil {
			return fmt.Errorf("v2v: SaveIndexedSnapshotFile: %w", err)
		}
		return snapshot.SaveShardedBundleFile(path, m, tokens, graphs)
	default:
		return fmt.Errorf("v2v: SaveIndexedSnapshotFile needs an HNSW index, got %T (exact and IVF indexes rebuild quickly and are not persisted)", idx)
	}
}

// LoadIndexedSnapshot loads a model file in any persistence format
// (bundle, binary snapshot, word2vec text — auto-sniffed) and returns
// an index over it per cfg, validating cfg first. When the file
// bundles an HNSW graph and cfg asks for an HNSW index compatible
// with it — same metric, no explicitly conflicting build parameters
// (an M different from the graph's, or a nonzero EfConstruction) —
// the prebuilt graph is bound (cfg.EfSearch and cfg.Workers still
// apply); otherwise the index is built from scratch. Non-HNSW
// configurations skip decoding the graph section entirely.
func LoadIndexedSnapshot(path string, cfg IndexConfig) (*Model, []string, Index, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, nil, err
	}
	if cfg.Kind != HNSWIndex {
		m, tokens, err := snapshot.LoadFile(path)
		if err != nil {
			return nil, nil, nil, err
		}
		idx, err := vecstore.Open(m.Store(), cfg)
		if err != nil {
			return nil, nil, nil, err
		}
		return m, tokens, idx, nil
	}
	b, err := snapshot.LoadBundle(path)
	if err != nil {
		return nil, nil, nil, err
	}
	m, tokens := b.Model, b.Tokens
	if cfg.Shards > 1 {
		if bindableShards(b.Shards, cfg) {
			idx, err := vecstore.OpenShardedFromGraphs(m.Store(), b.Shards, cfg)
			if err != nil {
				return nil, nil, nil, fmt.Errorf("v2v: binding bundled sharded index: %w", err)
			}
			return m, tokens, idx, nil
		}
	} else if bindableGraph(b.Graph, cfg) {
		idx, err := vecstore.HNSWFromGraph(m.Store(), b.Graph, cfg.EfSearch, cfg.Workers)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("v2v: binding bundled index graph: %w", err)
		}
		return m, tokens, idx, nil
	}
	idx, err := vecstore.Open(m.Store(), cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	return m, tokens, idx, nil
}

// bindableGraph reports whether a persisted graph satisfies an HNSW
// configuration: same metric, and no explicit build parameter the
// graph contradicts (a caller that pins M or EfConstruction asked for
// a specific build, so it gets one).
func bindableGraph(g *vecstore.HNSWGraph, cfg IndexConfig) bool {
	return g != nil && g.Metric == cfg.Metric &&
		(cfg.M == 0 || cfg.M == g.M) && cfg.EfConstruction == 0
}

// bindableShards is bindableGraph for a sharded bundle: the persisted
// partition must match the configured shard count, and every shard's
// graph must individually satisfy the configuration.
func bindableShards(graphs []*vecstore.HNSWGraph, cfg IndexConfig) bool {
	if len(graphs) != cfg.Shards {
		return false
	}
	for _, g := range graphs {
		if !bindableGraph(g, cfg) {
			return false
		}
	}
	return true
}

// ---- Vector store and top-k indexes --------------------------------

// VectorStore is a contiguous, aligned float32 matrix with cached L2
// norms — the storage every similarity consumer shares. Get a model's
// store with Model.Store().
type VectorStore = vecstore.Store

// Index is a pluggable top-k similarity index over a VectorStore.
type Index = vecstore.Index

// MutableIndex is the online-write extension of Index: Insert appends
// and indexes a new vector (incrementally, even for HNSW and IVF) and
// Delete tombstones a row, both safe to call concurrently with
// queries. Every index built by NewIndex, NewVectorIndex and
// LoadIndexedSnapshot implements it — use AsMutableIndex to surface
// the extension. See docs/INDEXES.md for the mutability semantics
// (tombstone filtering, compaction, staleness detection).
type MutableIndex = vecstore.MutableIndex

// AsMutableIndex surfaces idx's online-write extension. The second
// return is false only for third-party Index implementations; every
// index this package builds supports writes.
func AsMutableIndex(idx Index) (MutableIndex, bool) {
	m, ok := idx.(MutableIndex)
	return m, ok
}

// IndexKind selects the index implementation.
type IndexKind = vecstore.Kind

// Index kinds.
const (
	// ExactIndex scans every vector with blocked kernels and bounded
	// top-k heaps; results are exact (and bit-for-bit identical to
	// the pre-index brute-force paths).
	ExactIndex = vecstore.KindExact
	// IVFIndex prunes the scan with a k-means coarse quantizer,
	// probing only the NProbe closest cells; approximate.
	IVFIndex = vecstore.KindIVF
	// HNSWIndex routes queries through a hierarchical navigable small
	// world graph: sublinear approximate search whose recall is tuned
	// by M and EfSearch. The graph can be persisted alongside the
	// model with SaveIndexedSnapshot so servers skip the build. See
	// docs/INDEXES.md.
	HNSWIndex = vecstore.KindHNSW
)

// IndexConfig selects and tunes an index (kind, metric, IVF
// NLists/NProbe, HNSW M/EfConstruction/EfSearch, workers, seed). The
// zero value is an exact cosine index; invalid combinations are
// rejected with a descriptive error by every constructor (see
// IndexConfig.Validate). docs/INDEXES.md is the selection and tuning
// guide.
type IndexConfig = vecstore.Config

// SearchResult is one similarity hit (vertex ID and score, higher
// better).
type SearchResult = vecstore.Result

// IndexMetric selects the similarity an index scores by.
type IndexMetric = vecstore.Metric

// Index metrics.
const (
	CosineSimilarityMetric = vecstore.Cosine
	DotProductMetric       = vecstore.Dot
	EuclideanMetric        = vecstore.Euclidean
)

// NewIndex builds a similarity index over a trained model's vectors.
func NewIndex(m *Model, cfg IndexConfig) (Index, error) {
	return vecstore.Open(m.Store(), cfg)
}

// NewVectorIndex builds a similarity index over an arbitrary store.
func NewVectorIndex(s *VectorStore, cfg IndexConfig) (Index, error) {
	return vecstore.Open(s, cfg)
}

// VectorStoreOf copies [][]float64 rows into an aligned store (the
// bridge from the historical interchange format).
func VectorStoreOf(rows [][]float64) *VectorStore { return vecstore.FromRows64(rows) }

// ---- Serving -------------------------------------------------------

// ServeConfig configures the embedding query server (listen address,
// model path, index, response cache size). See docs/SERVING.md.
type ServeConfig = server.Config

// ServeWALConfig configures the server's write-ahead log
// (ServeConfig.WAL): with a log directory set, every acknowledged
// write is logged before it is applied and startup replays the log,
// so a crash loses no acknowledged write. See docs/SERVING.md
// ("Durability").
type ServeWALConfig = server.WALConfig

// ServeAdmissionConfig configures per-class admission control and
// deadlines (ServeConfig.Admission): bounded concurrency plus a small
// wait queue per request class, shedding excess load with 429 +
// Retry-After, and optional per-class deadlines answered with 503
// when they expire mid-request. See docs/SERVING.md ("Overload and
// backpressure").
type ServeAdmissionConfig = server.AdmissionConfig

// ServeClassLimit bounds one request class (ServeAdmissionConfig.Read
// / .Write / .Admin): in-flight concurrency, wait-queue depth and
// deadline.
type ServeClassLimit = server.ClassLimit

// QueryServer is a long-lived HTTP/JSON query service over a trained
// embedding: /v1/neighbors, /v1/similarity, /v1/analogy, /v1/predict
// (plus batched variants), /healthz and /stats, with atomic hot model
// reload via /v1/reload and online writes via /v1/upsert and
// /v1/delete (plus batched variants) — upserts and deletes are
// visible to the very next query, no reload required, and deletes
// compact into a fresh generation past a tombstone threshold (see
// ServeConfig.CompactFraction; ServeConfig.ReadOnly disables writes).
// Build one with NewQueryServer or NewQueryServerFromModel.
type QueryServer = server.Server

// NewQueryServer builds a query server and loads cfg.ModelPath (in
// either persistence format).
func NewQueryServer(cfg ServeConfig) (*QueryServer, error) { return server.New(cfg) }

// NewQueryServerFromModel builds a query server around an in-memory
// model; tokens may be nil (decimal indices).
func NewQueryServerFromModel(cfg ServeConfig, m *Model, tokens []string) (*QueryServer, error) {
	return server.NewFromModel(cfg, m, tokens)
}

// Serve loads cfg.ModelPath and serves queries on cfg.Addr until ctx
// is cancelled, then shuts down gracefully — the programmatic
// equivalent of `v2v serve`.
func Serve(ctx context.Context, cfg ServeConfig) error {
	s, err := server.New(cfg)
	if err != nil {
		return err
	}
	return s.ListenAndServe(ctx, nil)
}

// ---- Applications -------------------------------------------------

// CommunityConfig controls embedding-space community detection.
type CommunityConfig = core.CommunityConfig

// CommunityResult is a detected community partition.
type CommunityResult = core.CommunityResult

// EvaluateCommunities returns the paper's pairwise precision and
// recall of a partition against ground truth.
func EvaluateCommunities(truth, pred []int) (precision, recall float64, err error) {
	return core.EvaluateCommunities(truth, pred)
}

// PairwiseF1 is the harmonic mean of pairwise precision and recall.
func PairwiseF1(truth, pred []int) (float64, error) { return metrics.PairwiseF1(truth, pred) }

// NMI is the normalised mutual information of two partitions.
func NMI(truth, pred []int) (float64, error) { return metrics.NMI(truth, pred) }

// AdjustedRandIndex of two partitions.
func AdjustedRandIndex(truth, pred []int) (float64, error) {
	return metrics.AdjustedRandIndex(truth, pred)
}

// PCA is a fitted principal component analysis.
type PCA = linalg.PCA

// PCAOf fits a k-component PCA to arbitrary points (rows).
func PCAOf(rows [][]float64, k int, seed uint64) (*PCA, error) {
	return linalg.FitPCA(rows, k, seed)
}

// TSNEConfig controls the t-SNE embedding.
type TSNEConfig = tsne.Config

// TSNE computes a t-SNE projection of arbitrary points (the paper
// cites t-SNE alongside PCA for visualization).
func TSNE(points [][]float64, cfg TSNEConfig) ([][]float64, error) { return tsne.Embed(points, cfg) }

// KMeansConfig controls direct k-means clustering of points.
type KMeansConfig = cluster.Config

// KMeansResult is a fitted clustering.
type KMeansResult = cluster.Result

// KMeans clusters arbitrary points (multi-restart Lloyd/k-means++).
func KMeans(points [][]float64, cfg KMeansConfig) (*KMeansResult, error) {
	return cluster.KMeans(points, cfg)
}

// Silhouette returns the mean silhouette coefficient of a clustering,
// in [-1, 1].
func Silhouette(points [][]float64, assign []int) (float64, error) {
	return cluster.Silhouette(points, assign)
}

// KSelection reports the silhouette scores of candidate cluster
// counts.
type KSelection = cluster.KSelection

// ChooseK selects the number of clusters by maximum silhouette over
// [kMin, kMax] — a principled answer to the parameter-selection
// question the paper leaves open.
func ChooseK(points [][]float64, kMin, kMax int, cfg KMeansConfig) (*KSelection, error) {
	return cluster.ChooseK(points, kMin, kMax, cfg)
}

// KNNDistance selects the k-NN metric.
type KNNDistance = knn.Distance

// k-NN distances; the paper uses cosine.
const (
	CosineDistance    = knn.Cosine
	EuclideanDistance = knn.Euclidean
)

// KNNClassifier is a fitted k-nearest-neighbour classifier.
type KNNClassifier = knn.Classifier

// NewKNNClassifier stores the labelled training points.
func NewKNNClassifier(k int, dist KNNDistance, points [][]float64, labels []int) *KNNClassifier {
	return knn.NewClassifier(k, dist, points, labels)
}

// CrossValidateKNN runs folds-fold cross-validation of k-NN
// classification and returns the mean accuracy.
func CrossValidateKNN(points [][]float64, labels []int, k, folds int, dist KNNDistance, seed uint64) (float64, error) {
	return knn.CrossValidate(points, labels, k, folds, dist, seed)
}

// ---- Graph-based baselines ----------------------------------------

// Modularity returns Newman's modularity of a partition of g.
func Modularity(g *Graph, partition []int) (float64, error) {
	return community.Modularity(g, partition)
}

// CNMConfig controls the CNM greedy modularity baseline.
type CNMConfig = community.CNMConfig

// CNMResult is the outcome of a CNM run.
type CNMResult = community.CNMResult

// CNM runs the Clauset-Newman-Moore greedy modularity algorithm, one
// of the paper's two direct graph-based baselines.
func CNM(g *Graph, cfg CNMConfig) (*CNMResult, error) { return community.CNM(g, cfg) }

// GNConfig controls the Girvan-Newman baseline.
type GNConfig = community.GNConfig

// GNResult is the outcome of a Girvan-Newman run.
type GNResult = community.GNResult

// GirvanNewman runs the edge-betweenness community detection
// algorithm, the paper's second direct graph-based baseline.
func GirvanNewman(g *Graph, cfg GNConfig) (*GNResult, error) { return community.GirvanNewman(g, cfg) }

// LouvainConfig controls the Louvain extension baseline.
type LouvainConfig = community.LouvainConfig

// LouvainResult is the outcome of a Louvain run.
type LouvainResult = community.LouvainResult

// Louvain runs Blondel et al.'s modularity optimisation (extension;
// not in the paper's comparison).
func Louvain(g *Graph, cfg LouvainConfig) (*LouvainResult, error) {
	return community.Louvain(g, cfg)
}

// LabelPropagationConfig controls the LPA extension baseline.
type LabelPropagationConfig = community.LabelPropagationConfig

// LabelPropagation runs asynchronous label propagation (extension).
func LabelPropagation(g *Graph, cfg LabelPropagationConfig) ([]int, error) {
	return community.LabelPropagation(g, cfg)
}

// WalktrapConfig controls the Walktrap baseline.
type WalktrapConfig = community.WalktrapConfig

// WalktrapResult is the outcome of a Walktrap run.
type WalktrapResult = community.WalktrapResult

// Walktrap runs Pons & Latapy's random-walk community detection (the
// paper's reference [14] and V2V's closest ancestor: it compares
// t-step walk distributions directly instead of learning embeddings).
func Walktrap(g *Graph, cfg WalktrapConfig) (*WalktrapResult, error) {
	return community.Walktrap(g, cfg)
}

// SpectralEmbedding holds Laplacian-eigenmap coordinates per vertex.
type SpectralEmbedding = spectral.Embedding

// SpectralEmbed computes the k-dimensional spectral embedding of an
// undirected graph — the classical linear-algebraic alternative to
// V2V's learned embedding.
func SpectralEmbed(g *Graph, k int, seed uint64) (*SpectralEmbedding, error) {
	return spectral.Embed(g, k, seed)
}

// SpectralCommunitiesConfig controls SpectralCommunities.
type SpectralCommunitiesConfig = spectral.CommunitiesConfig

// SpectralCommunities performs Ng-Jordan-Weiss spectral clustering.
func SpectralCommunities(g *Graph, cfg SpectralCommunitiesConfig) ([]int, error) {
	return spectral.Communities(g, cfg)
}

// ---- Link prediction (extension; paper conclusion) ------------------

// LinkScorer assigns a likelihood score to candidate edges.
type LinkScorer = linkpred.Scorer

// LinkSplit is a train/test edge partition for link prediction.
type LinkSplit = linkpred.Split

// LinkResult is a link prediction evaluation (AUC, precision@k).
type LinkResult = linkpred.Result

// HoldOutEdges removes a fraction of edges as test positives and
// samples matching non-edge negatives.
func HoldOutEdges(g *Graph, fraction float64, seed uint64) (*LinkSplit, error) {
	return linkpred.HoldOut(g, fraction, seed)
}

// EvaluateLinkScorer ranks the split's pairs and reports AUC and
// precision@k.
func EvaluateLinkScorer(s LinkScorer, split *LinkSplit) LinkResult {
	return linkpred.Evaluate(s, split)
}

// EmbeddingLinkScorer scores pairs by embedding similarity (cosine,
// or dot product with hadamard = true), reading the trained vectors
// in place through the model's store.
func EmbeddingLinkScorer(m *Model, hadamard bool) LinkScorer {
	return &linkpred.EmbeddingScorer{Store: m.Store(), Hadamard: hadamard}
}

// EvaluateLinkScorerParallel is EvaluateLinkScorer with pair scoring
// fanned out over workers goroutines (0 = GOMAXPROCS). The scorer's
// Score method must tolerate concurrent calls — every scorer built by
// this package does. Results are identical for every worker count.
func EvaluateLinkScorerParallel(s LinkScorer, split *LinkSplit, workers int) LinkResult {
	return linkpred.EvaluateParallel(s, split, workers)
}

// CommonNeighborsScorer counts shared neighbours in g.
func CommonNeighborsScorer(g *Graph) LinkScorer { return &linkpred.CommonNeighbors{G: g} }

// JaccardScorer normalises shared neighbours by union size.
func JaccardScorer(g *Graph) LinkScorer { return &linkpred.Jaccard{G: g} }

// AdamicAdarScorer weights shared neighbours by 1/log(degree).
func AdamicAdarScorer(g *Graph) LinkScorer { return &linkpred.AdamicAdar{G: g} }

// PreferentialAttachmentScorer scores by degree product.
func PreferentialAttachmentScorer(g *Graph) LinkScorer {
	return &linkpred.PreferentialAttachment{G: g}
}

// ---- Datasets and visualization ------------------------------------

// OpenFlightsConfig controls the synthetic OpenFlights-style route
// network generator (see DESIGN.md for the substitution rationale).
type OpenFlightsConfig = openflights.Config

// OpenFlightsDataset is the generated route network with labels.
type OpenFlightsDataset = openflights.Dataset

// DefaultOpenFlightsConfig is the OpenFlights-scale configuration
// (~10k airports, ~67k directed routes).
func DefaultOpenFlightsConfig(seed uint64) OpenFlightsConfig {
	return openflights.DefaultConfig(seed)
}

// GenerateOpenFlights builds the synthetic route network.
func GenerateOpenFlights(cfg OpenFlightsConfig) (*OpenFlightsDataset, error) {
	return openflights.Generate(cfg)
}

// ScatterPlot renders a categorical 2-D scatter as SVG.
type ScatterPlot = viz.ScatterPlot

// LineChart renders a multi-series line chart as SVG.
type LineChart = viz.LineChart

// ChartSeries is one line of a LineChart.
type ChartSeries = viz.Series

// GraphPlot renders a laid-out graph as SVG.
type GraphPlot = viz.GraphPlot

// BarChart renders labelled bars as SVG (degree histograms etc.).
type BarChart = viz.BarChart

// LayoutConfig controls the ForceAtlas2-style force-directed layout.
type LayoutConfig = viz.LayoutConfig

// ForceLayout computes 2-D positions for every vertex of g (the
// paper's Figure 3 drawings).
func ForceLayout(g *Graph, cfg LayoutConfig) (x, y []float64) { return viz.Layout(g, cfg) }
