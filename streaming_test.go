package v2v

import (
	"fmt"
	"sort"
	"sync"
	"testing"
)

func streamingTestOptions() Options {
	o := DefaultOptions(16)
	o.WalksPerVertex = 4
	o.WalkLength = 30
	o.Epochs = 2
	o.Seed = 17
	o.Workers = 1
	return o
}

// TestStreamingEmbeddingParity is the headline determinism guarantee:
// with a fixed seed and Workers = 1, the streaming and materialized
// pipelines produce bit-identical embeddings.
func TestStreamingEmbeddingParity(t *testing.T) {
	g, _ := CommunityBenchmark(DefaultBenchmarkConfig(0.5, 3))
	opts := streamingTestOptions()

	want, err := Embed(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := EmbedStreaming(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tokens != want.Tokens {
		t.Fatalf("streaming Tokens = %d, want %d", got.Tokens, want.Tokens)
	}
	for i := range want.Model.Vectors {
		if got.Model.Vectors[i] != want.Model.Vectors[i] {
			t.Fatalf("vector[%d] = %g, want %g (paths diverged)",
				i, got.Model.Vectors[i], want.Model.Vectors[i])
		}
	}
}

// TestStreamingOptionFlag: Options.Streaming routes Embed through the
// same fused path as EmbedStreaming.
func TestStreamingOptionFlag(t *testing.T) {
	g := ErdosRenyiGNM(60, 200, 9)
	opts := streamingTestOptions()
	opts.Streaming = true
	viaFlag, err := Embed(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := EmbedStreaming(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range direct.Model.Vectors {
		if viaFlag.Model.Vectors[i] != direct.Model.Vectors[i] {
			t.Fatalf("vector[%d]: flag path %g, direct path %g",
				i, viaFlag.Model.Vectors[i], direct.Model.Vectors[i])
		}
	}
}

// TestStreamingWalkMultisetParity: with Workers = N the streaming
// shards, drained concurrently, produce exactly the walk multiset of
// the materialized corpus.
func TestStreamingWalkMultisetParity(t *testing.T) {
	g := BarabasiAlbert(150, 3, 5)
	opts := streamingTestOptions()
	opts.Workers = 4

	corpus, err := GenerateWalks(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]string, corpus.NumWalks())
	for i := 0; i < corpus.NumWalks(); i++ {
		want[i] = fmt.Sprint(corpus.Walk(i))
	}

	stream, err := StreamWalks(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	workers := 4
	numWalks := stream.NumWalks()
	shardWalks := make([][]string, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * numWalks / workers
		hi := (w + 1) * numWalks / workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			for wk := range stream.WalkSeq(lo, hi) {
				shardWalks[w] = append(shardWalks[w], fmt.Sprint(wk))
			}
		}(w, lo, hi)
	}
	wg.Wait()

	var got []string
	for _, s := range shardWalks {
		got = append(got, s...)
	}
	if len(got) != len(want) {
		t.Fatalf("streamed %d walks, want %d", len(got), len(want))
	}
	sortedWant := append([]string(nil), want...)
	sort.Strings(sortedWant)
	sort.Strings(got)
	for i := range got {
		if got[i] != sortedWant[i] {
			t.Fatalf("walk multiset mismatch at rank %d: %s vs %s", i, got[i], sortedWant[i])
		}
	}
}

// TestStreamingSharedWalkParity: the Figure 9 protocol — several
// models trained "in the same set of random walk paths" — must give
// identical results whether the shared walks are a materialized
// corpus or a stream re-derived per model.
func TestStreamingSharedWalkParity(t *testing.T) {
	g := ErdosRenyiGNM(70, 250, 11)
	walkOpts := streamingTestOptions()

	corpus, err := GenerateWalks(g, walkOpts)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := StreamWalks(g, walkOpts)
	if err != nil {
		t.Fatal(err)
	}
	for _, dim := range []int{8, 24} {
		modelOpts := walkOpts
		modelOpts.Dim = dim
		want, err := EmbedWalks(g, corpus, modelOpts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := EmbedWalkStream(g, stream, modelOpts)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Model.Vectors {
			if got.Model.Vectors[i] != want.Model.Vectors[i] {
				t.Fatalf("dim %d: vector[%d] = %g, want %g", dim, i, got.Model.Vectors[i], want.Model.Vectors[i])
			}
		}
	}
}

// TestStreamingEmptyGraph: both pipelines reject the degenerate
// zero-vertex graph with the same class of error.
func TestStreamingEmptyGraph(t *testing.T) {
	g := NewGraphBuilder(0).Build()
	opts := streamingTestOptions()
	if _, err := Embed(g, opts); err == nil {
		t.Error("materialized Embed accepted an empty graph")
	}
	if _, err := EmbedStreaming(g, opts); err == nil {
		t.Error("streaming Embed accepted an empty graph")
	}
}

// TestStreamingIsolatedVertices: a graph of only isolated vertices
// yields length-1 walks on both paths, which must still agree.
func TestStreamingIsolatedVertices(t *testing.T) {
	g := NewGraphBuilder(8).Build()
	opts := streamingTestOptions()
	opts.WalksPerVertex = 2
	want, err := Embed(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := EmbedStreaming(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tokens != want.Tokens {
		t.Fatalf("Tokens = %d, want %d", got.Tokens, want.Tokens)
	}
	for i := range want.Model.Vectors {
		if got.Model.Vectors[i] != want.Model.Vectors[i] {
			t.Fatalf("vector[%d] = %g, want %g", i, got.Model.Vectors[i], want.Model.Vectors[i])
		}
	}
}
