package v2v

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"v2v/internal/loadgen"
)

// crashReport is the machine-readable outcome of the crash e2e run
// (written to $CRASH_REPORT_OUT when set; CI uploads it as an
// artifact).
type crashReport struct {
	RunSeconds       float64 `json:"run_seconds"`
	KillAfterSeconds float64 `json:"kill_after_seconds"`
	JournaledEvents  int     `json:"journaled_events"`
	AckedEvents      int     `json:"acked_events"`
	VerifiedUpserts  int     `json:"verified_upserts"`
	VerifiedDeletes  int     `json:"verified_deletes"`
	AmbiguousTokens  int     `json:"ambiguous_tokens"`
	LostWrites       int     `json:"lost_writes"`
	ReplayedRecords  uint64  `json:"replayed_records"`
	RecoveredTorn    bool    `json:"recovered_torn"`
}

// startServeProcess launches the built binary with args, scans stderr
// for the bound address, and returns the command plus base URL.
func startServeProcess(t *testing.T, bin string, args ...string) (*exec.Cmd, string, *bytes.Buffer) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting server: %v", err)
	}
	t.Cleanup(func() { cmd.Process.Kill() }) // no-op after Wait
	addrc := make(chan string, 1)
	var logTail bytes.Buffer
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			logTail.WriteString(line + "\n")
			if _, after, ok := strings.Cut(line, "listening on "); ok {
				select {
				case addrc <- strings.TrimSpace(after):
				default:
				}
			}
		}
	}()
	select {
	case a := <-addrc:
		return cmd, "http://" + a, &logTail
	case <-time.After(15 * time.Second):
		t.Fatalf("server never reported its address; log:\n%s", logTail.String())
		return nil, "", nil
	}
}

// TestCrashRecoveryE2E is the tentpole acceptance test (`make
// crash-smoke`): SIGKILL a real `v2v serve -wal` process in the middle
// of a mixed read/write load run, restart it over the same directory,
// and prove that ZERO acknowledged writes were lost. The loadgen write
// journal defines the contract: for every token whose outcome is
// unambiguous (its last journaled event was acknowledged and nothing
// with an unknown outcome followed), the restarted server must agree
// with the journal — upserted tokens resolve, deleted tokens 404.
// Tokens with in-flight writes at the kill are excluded: an unacked
// write may legitimately land either way.
func TestCrashRecoveryE2E(t *testing.T) { runCrashRecoveryE2E(t, 0) }

// TestShardedCrashRecoveryE2E is the same fault-injection run against
// a 4-shard serving generation (`make crash-smoke-sharded`). Hash
// routing is deterministic, so replay must land every acknowledged
// write back in the shard it was served from: any misroute makes the
// per-token verification below disagree with the journal.
func TestShardedCrashRecoveryE2E(t *testing.T) { runCrashRecoveryE2E(t, 4) }

func runCrashRecoveryE2E(t *testing.T, shards int) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not on PATH")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "v2v")
	build := exec.Command("go", "build", "-o", bin, "./cmd/v2v")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building v2v: %v\n%s", err, out)
	}

	const vocab, dim = 200, 8
	m := &Model{Dim: dim, Vocab: vocab, Vectors: make([]float32, vocab*dim)}
	for i := range m.Vectors {
		m.Vectors[i] = float32((i*2654435761)%997) / 997
	}
	model := filepath.Join(dir, "model.snap")
	f, err := os.Create(model)
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveSnapshot(f, m, nil); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	walDir := filepath.Join(dir, "wal")
	// Small segments and an aggressive checkpoint threshold so the run
	// exercises rotation, checkpointing AND truncation before the kill,
	// not just a single growing segment.
	serveArgs := []string{
		"serve", "-model", model, "-addr", "127.0.0.1:0",
		"-wal", walDir, "-wal-sync", "always",
		"-wal-segment-bytes", "4096", "-wal-checkpoint-bytes", "8192",
	}
	if shards > 1 {
		serveArgs = append(serveArgs, "-shards", strconv.Itoa(shards))
	}
	cmd, base, logTail := startServeProcess(t, bin, serveArgs...)

	runFor := 4 * time.Second
	if testing.Short() {
		runFor = 2 * time.Second
	}
	killAfter := runFor * 6 / 10
	mix, err := loadgen.WithWriteFraction(map[loadgen.Op]float64{
		loadgen.OpNeighbors: 0.7, loadgen.OpSimilarity: 0.3,
	}, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	killed := make(chan struct{})
	timer := time.AfterFunc(killAfter, func() {
		cmd.Process.Kill() // SIGKILL: no shutdown path runs
		close(killed)
	})
	defer timer.Stop()
	res, err := loadgen.Run(loadgen.Config{
		BaseURL:      base,
		Workers:      4,
		QPS:          800,
		Duration:     runFor,
		Mix:          mix,
		K:            5,
		Seed:         23,
		Timeout:      2 * time.Second,
		RecordWrites: true,
	})
	if err != nil {
		t.Fatalf("loadgen: %v", err)
	}
	<-killed
	cmd.Wait() // reap; a SIGKILL exit is expected to be unclean

	acked := 0
	for _, ev := range res.Writes {
		if ev.Acked {
			acked++
		}
	}
	if acked == 0 {
		t.Fatalf("no write was acknowledged before the kill (journal: %d events); log:\n%s",
			len(res.Writes), logTail.String())
	}
	if res.Overall.Errors == 0 {
		t.Fatalf("every request succeeded — the kill landed after the run; raise killAfter below runFor")
	}

	// Restart over the same WAL directory: checkpoint + replay must
	// reconstruct every acknowledged write.
	_, base2, logTail2 := startServeProcess(t, bin, serveArgs...)

	if shards > 1 {
		// The restarted generation must actually be sharded — a silent
		// fall-back to a flat index would make the verification vacuous.
		var h struct {
			Shards int `json:"shards"`
		}
		resp, err := http.Get(base2 + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if h.Shards != shards {
			t.Fatalf("restarted server reports %d shards, want %d", h.Shards, shards)
		}
	}

	// Fold the journal per token. Each token belongs to one worker and
	// journals are worker-ordered, so the last event is the token's
	// final acknowledged state — unless an unknown-outcome event
	// follows it, which makes the token ambiguous.
	type state struct {
		lastAckedOp loadgen.Op
		hasAcked    bool
		unkAfterAck bool
	}
	tokens := make(map[string]*state)
	for _, ev := range res.Writes {
		st := tokens[ev.Vertex]
		if st == nil {
			st = &state{}
			tokens[ev.Vertex] = st
		}
		if ev.Acked {
			st.lastAckedOp = ev.Op
			st.hasAcked = true
			st.unkAfterAck = false
		} else if st.hasAcked {
			st.unkAfterAck = true
		}
	}

	rep := crashReport{
		RunSeconds:       res.DurationSeconds,
		KillAfterSeconds: killAfter.Seconds(),
		JournaledEvents:  len(res.Writes),
		AckedEvents:      acked,
	}
	client := &http.Client{Timeout: 5 * time.Second}
	for tok, st := range tokens {
		if !st.hasAcked || st.unkAfterAck {
			rep.AmbiguousTokens++
			continue
		}
		resp, err := client.Get(base2 + "/v1/neighbors?vertex=" + tok + "&k=1")
		if err != nil {
			t.Fatalf("verifying %q: %v", tok, err)
		}
		resp.Body.Close()
		switch st.lastAckedOp {
		case loadgen.OpUpsert:
			rep.VerifiedUpserts++
			if resp.StatusCode != 200 {
				rep.LostWrites++
				t.Errorf("acked upsert of %q lost: status %d after restart", tok, resp.StatusCode)
			}
		case loadgen.OpDelete:
			rep.VerifiedDeletes++
			if resp.StatusCode != 404 {
				rep.LostWrites++
				t.Errorf("acked delete of %q lost: status %d after restart, want 404", tok, resp.StatusCode)
			}
		}
	}
	// The run must actually have proven something on both write paths.
	if rep.VerifiedUpserts == 0 || rep.VerifiedDeletes == 0 {
		t.Fatalf("verification covered %d upserts / %d deletes — need both > 0 (journal: %d events, %d acked)",
			rep.VerifiedUpserts, rep.VerifiedDeletes, len(res.Writes), acked)
	}

	var stats struct {
		WAL struct {
			Enabled         bool   `json:"enabled"`
			ReplayedRecords uint64 `json:"replayed_records"`
			RecoveredTorn   bool   `json:"recovered_torn"`
		} `json:"wal"`
	}
	resp, err := client.Get(base2 + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !stats.WAL.Enabled {
		t.Fatalf("restarted server does not report WAL enabled; log:\n%s", logTail2.String())
	}
	rep.ReplayedRecords = stats.WAL.ReplayedRecords
	rep.RecoveredTorn = stats.WAL.RecoveredTorn

	t.Logf("crash e2e: %d journaled writes (%d acked), verified %d upserts + %d deletes, %d ambiguous, %d lost, %d records replayed (torn tail: %v)",
		rep.JournaledEvents, rep.AckedEvents, rep.VerifiedUpserts, rep.VerifiedDeletes,
		rep.AmbiguousTokens, rep.LostWrites, rep.ReplayedRecords, rep.RecoveredTorn)

	if out := os.Getenv("CRASH_REPORT_OUT"); out != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
			t.Fatalf("writing crash report: %v", err)
		}
		t.Logf("crash report written to %s", out)
	}
}
