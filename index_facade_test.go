package v2v

import "testing"

// TestVectorIndexThroughFacade exercises the public index surface:
// train, build exact and IVF indexes, and check the approximate index
// agrees with the exact one on an easy graph.
func TestVectorIndexThroughFacade(t *testing.T) {
	g, _ := CommunityBenchmark(DefaultBenchmarkConfig(0.8, 21))
	opts := DefaultOptions(16)
	opts.WalksPerVertex = 4
	opts.WalkLength = 30
	opts.Epochs = 1
	opts.Seed = 23
	emb, err := Embed(g, opts)
	if err != nil {
		t.Fatal(err)
	}

	exact, err := NewIndex(emb.Model, IndexConfig{Kind: ExactIndex})
	if err != nil {
		t.Fatal(err)
	}
	ivf, err := NewIndex(emb.Model, IndexConfig{Kind: IVFIndex, NLists: 20, NProbe: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	q := emb.Model.Store().Row(0)
	a, b := exact.Search(q, 5), ivf.Search(q, 5)
	if len(a) != 5 || len(b) != 5 {
		t.Fatalf("result sizes %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] { // nprobe = nlists: exhaustive, must agree
			t.Fatalf("rank %d: exact %+v vs ivf %+v", i, a[i], b[i])
		}
	}

	// Neighbors through the embedding's configured index.
	nn, err := emb.Neighbors(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(nn) != 3 || nn[0].Word == 0 {
		t.Fatalf("Neighbors(0, 3) = %+v", nn)
	}
	// Must agree with the model's own exact query path.
	direct := emb.Model.Neighbors(0, 3)
	for i := range nn {
		if nn[i] != direct[i] {
			t.Fatalf("embedding index diverged: %+v vs %+v", nn[i], direct[i])
		}
	}
}

// TestOptionsIndexDrivesPrediction checks Options.Index reaches the
// missing-label fast path.
func TestOptionsIndexDrivesPrediction(t *testing.T) {
	g, truth := CommunityBenchmark(DefaultBenchmarkConfig(0.9, 31))
	opts := DefaultOptions(16)
	opts.WalksPerVertex = 4
	opts.WalkLength = 30
	opts.Epochs = 2
	opts.Seed = 33
	opts.Index = IndexConfig{Kind: IVFIndex, NLists: 16, NProbe: 8, Seed: 5}
	emb, err := Embed(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	labels := append([]int(nil), truth...)
	for i := 0; i < len(labels); i += 10 {
		labels[i] = -1
	}
	completed, err := emb.PredictLabels(labels, 3)
	if err != nil {
		t.Fatal(err)
	}
	correct, total := 0, 0
	for i := 0; i < len(labels); i += 10 {
		total++
		if completed[i] == truth[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(total); acc < 0.6 {
		t.Fatalf("IVF-indexed label recovery accuracy %.3f", acc)
	}
}
