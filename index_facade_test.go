package v2v

import (
	"os"
	"path/filepath"
	"testing"
)

// TestVectorIndexThroughFacade exercises the public index surface:
// train, build exact and IVF indexes, and check the approximate index
// agrees with the exact one on an easy graph.
func TestVectorIndexThroughFacade(t *testing.T) {
	g, _ := CommunityBenchmark(DefaultBenchmarkConfig(0.8, 21))
	opts := DefaultOptions(16)
	opts.WalksPerVertex = 4
	opts.WalkLength = 30
	opts.Epochs = 1
	opts.Seed = 23
	emb, err := Embed(g, opts)
	if err != nil {
		t.Fatal(err)
	}

	exact, err := NewIndex(emb.Model, IndexConfig{Kind: ExactIndex})
	if err != nil {
		t.Fatal(err)
	}
	ivf, err := NewIndex(emb.Model, IndexConfig{Kind: IVFIndex, NLists: 20, NProbe: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	q := emb.Model.Store().Row(0)
	a, b := exact.Search(q, 5), ivf.Search(q, 5)
	if len(a) != 5 || len(b) != 5 {
		t.Fatalf("result sizes %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] { // nprobe = nlists: exhaustive, must agree
			t.Fatalf("rank %d: exact %+v vs ivf %+v", i, a[i], b[i])
		}
	}

	// Neighbors through the embedding's configured index.
	nn, err := emb.Neighbors(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(nn) != 3 || nn[0].Word == 0 {
		t.Fatalf("Neighbors(0, 3) = %+v", nn)
	}
	// Must agree with the model's own exact query path.
	direct := emb.Model.Neighbors(0, 3)
	for i := range nn {
		if nn[i] != direct[i] {
			t.Fatalf("embedding index diverged: %+v vs %+v", nn[i], direct[i])
		}
	}
}

// TestHNSWIndexThroughFacade exercises the HNSW surface end to end:
// build through NewIndex, persist through SaveIndexedSnapshot, bind
// through LoadIndexedSnapshot, and require identical answers.
func TestHNSWIndexThroughFacade(t *testing.T) {
	g, _ := CommunityBenchmark(DefaultBenchmarkConfig(0.8, 31))
	opts := DefaultOptions(16)
	opts.WalksPerVertex = 4
	opts.WalkLength = 30
	opts.Epochs = 1
	opts.Seed = 37
	emb, err := Embed(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	hnsw, err := NewIndex(emb.Model, IndexConfig{Kind: HNSWIndex, M: 8, EfConstruction: 40, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	tokens := make([]string, g.NumVertices())
	for v := range tokens {
		tokens[v] = g.Name(v)
	}
	path := filepath.Join(t.TempDir(), "bundle.snap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveIndexedSnapshot(f, emb.Model, tokens, hnsw); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	m2, tokens2, idx2, err := LoadIndexedSnapshot(path, IndexConfig{Kind: HNSWIndex})
	if err != nil {
		t.Fatal(err)
	}
	if m2.Vocab != emb.Model.Vocab || len(tokens2) != len(tokens) {
		t.Fatalf("bundle shape: %d vectors, %d tokens", m2.Vocab, len(tokens2))
	}
	for _, row := range []int{0, 100, 999} {
		a, b := hnsw.SearchRow(row, 5), idx2.SearchRow(row, 5)
		if len(a) != len(b) {
			t.Fatalf("row %d: %d vs %d results", row, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("row %d rank %d: %+v vs %+v after persistence", row, i, a[i], b[i])
			}
		}
	}

	// A non-HNSW index cannot be persisted.
	exact, err := NewIndex(emb.Model, IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveIndexedSnapshot(os.NewFile(0, "discard"), emb.Model, tokens, exact); err == nil {
		t.Fatal("SaveIndexedSnapshot accepted an exact index")
	}

	// Loading the bundle with an exact config ignores the graph and
	// still answers queries.
	_, _, idx3, err := LoadIndexedSnapshot(path, IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if got := idx3.SearchRow(0, 3); len(got) != 3 {
		t.Fatalf("exact-over-bundle SearchRow returned %d results", len(got))
	}

	// Validation errors are descriptive, not panics.
	if _, err := NewIndex(emb.Model, IndexConfig{Kind: HNSWIndex, NProbe: 4}); err == nil {
		t.Fatal("NewIndex accepted IVF parameters on an HNSW index")
	}
}

// TestOptionsIndexDrivesPrediction checks Options.Index reaches the
// missing-label fast path.
func TestOptionsIndexDrivesPrediction(t *testing.T) {
	g, truth := CommunityBenchmark(DefaultBenchmarkConfig(0.9, 31))
	opts := DefaultOptions(16)
	opts.WalksPerVertex = 4
	opts.WalkLength = 30
	opts.Epochs = 2
	opts.Seed = 33
	opts.Index = IndexConfig{Kind: IVFIndex, NLists: 16, NProbe: 8, Seed: 5}
	emb, err := Embed(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	labels := append([]int(nil), truth...)
	for i := 0; i < len(labels); i += 10 {
		labels[i] = -1
	}
	completed, err := emb.PredictLabels(labels, 3)
	if err != nil {
		t.Fatal(err)
	}
	correct, total := 0, 0
	for i := 0; i < len(labels); i += 10 {
		total++
		if completed[i] == truth[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(total); acc < 0.6 {
		t.Fatalf("IVF-indexed label recovery accuracy %.3f", acc)
	}
}
