package v2v

import (
	"bufio"
	"bytes"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestServeSmokeE2E is the `make serve-smoke` target: it builds the
// real v2v binary, serves a snapshot on a random port, issues one
// query per endpoint (including a hot reload), sends SIGTERM and
// asserts a clean, prompt shutdown. This is the only test that
// exercises the process-level signal path; everything below the
// signal handler is covered in-process by internal/server.
func TestServeSmokeE2E(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not on PATH")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "v2v")
	build := exec.Command("go", "build", "-o", bin, "./cmd/v2v")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building v2v: %v\n%s", err, out)
	}

	// A small deterministic model, written as a binary snapshot.
	const vocab, dim = 60, 8
	m := &Model{Dim: dim, Vocab: vocab, Vectors: make([]float32, vocab*dim)}
	for i := range m.Vectors {
		m.Vectors[i] = float32((i*2654435761)%997) / 997
	}
	model := filepath.Join(dir, "model.snap")
	f, err := os.Create(model)
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveSnapshot(f, m, nil); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(bin, "serve", "-model", model, "-addr", "127.0.0.1:0")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting server: %v", err)
	}
	defer cmd.Process.Kill() // no-op after a clean Wait

	// The server logs "listening on host:port" once bound; scan for it
	// (and keep draining stderr so the child never blocks on the pipe).
	addrc := make(chan string, 1)
	var logTail bytes.Buffer
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			logTail.WriteString(line + "\n")
			if _, after, ok := strings.Cut(line, "listening on "); ok {
				select {
				case addrc <- strings.TrimSpace(after):
				default:
				}
			}
		}
	}()
	var base string
	select {
	case a := <-addrc:
		base = "http://" + a
	case <-time.After(15 * time.Second):
		t.Fatalf("server never reported its address; log:\n%s", logTail.String())
	}

	get := func(path string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
	}
	post := func(path, body string) {
		t.Helper()
		resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("POST %s: status %d", path, resp.StatusCode)
		}
	}

	// One query per endpoint.
	get("/healthz")
	get("/stats")
	get("/v1/neighbors?vertex=3&k=5")
	post("/v1/neighbors/batch", `{"vertices":["1","2"],"k":3}`)
	get("/v1/similarity?a=1&b=2")
	post("/v1/similarity/batch", `{"pairs":[["1","2"]]}`)
	get("/v1/analogy?a=1&b=2&c=3&k=3")
	get("/v1/predict?u=4&v=5")
	post("/v1/predict/batch", `{"pairs":[["4","5"]]}`)
	get("/v1/vocab?limit=3")
	post("/v1/reload", fmt.Sprintf(`{"path":%q}`, model))

	// Clean SIGTERM shutdown: exit code 0, within the grace period.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("server exited uncleanly after SIGTERM: %v; log:\n%s", err, logTail.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("server did not exit within 10s of SIGTERM; log:\n%s", logTail.String())
	}
}
