package v2v

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"v2v/internal/snapshot"
	"v2v/internal/telemetry"
	"v2v/internal/vecstore"
)

// TestServeSmokeE2E is the `make serve-smoke` target: it builds the
// real v2v binary, serves a snapshot on a random port, issues one
// query per endpoint (including a hot reload), sends SIGTERM and
// asserts a clean, prompt shutdown. This is the only test that
// exercises the process-level signal path; everything below the
// signal handler is covered in-process by internal/server.
func TestServeSmokeE2E(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not on PATH")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "v2v")
	build := exec.Command("go", "build", "-o", bin, "./cmd/v2v")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building v2v: %v\n%s", err, out)
	}

	// A small deterministic model, written as a binary snapshot.
	const vocab, dim = 60, 8
	m := &Model{Dim: dim, Vocab: vocab, Vectors: make([]float32, vocab*dim)}
	for i := range m.Vectors {
		m.Vectors[i] = float32((i*2654435761)%997) / 997
	}
	model := filepath.Join(dir, "model.snap")
	f, err := os.Create(model)
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveSnapshot(f, m, nil); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(bin, "serve", "-model", model, "-addr", "127.0.0.1:0")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting server: %v", err)
	}
	defer cmd.Process.Kill() // no-op after a clean Wait

	// The server logs "listening on host:port" once bound; scan for it
	// (and keep draining stderr so the child never blocks on the pipe).
	addrc := make(chan string, 1)
	var logTail bytes.Buffer
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			logTail.WriteString(line + "\n")
			if _, after, ok := strings.Cut(line, "listening on "); ok {
				select {
				case addrc <- strings.TrimSpace(after):
				default:
				}
			}
		}
	}()
	var base string
	select {
	case a := <-addrc:
		base = "http://" + a
	case <-time.After(15 * time.Second):
		t.Fatalf("server never reported its address; log:\n%s", logTail.String())
	}

	get := func(path string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
	}
	post := func(path, body string) {
		t.Helper()
		resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("POST %s: status %d", path, resp.StatusCode)
		}
	}

	getCode := func(path string, want int) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("GET %s: status %d, want %d", path, resp.StatusCode, want)
		}
	}
	postCode := func(path, body string, want int) {
		t.Helper()
		resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("POST %s: status %d, want %d", path, resp.StatusCode, want)
		}
	}

	// One query per endpoint.
	get("/healthz")
	get("/stats")
	get("/v1/neighbors?vertex=3&k=5")
	post("/v1/neighbors/batch", `{"vertices":["1","2"],"k":3}`)
	get("/v1/similarity?a=1&b=2")
	post("/v1/similarity/batch", `{"pairs":[["1","2"]]}`)
	get("/v1/analogy?a=1&b=2&c=3&k=3")
	get("/v1/predict?u=4&v=5")
	post("/v1/predict/batch", `{"pairs":[["4","5"]]}`)
	get("/v1/vocab?limit=3")
	post("/v1/reload", fmt.Sprintf(`{"path":%q}`, model))

	// Online writes through the real binary: an upsert is queryable
	// with no reload, a delete stops resolving, and the batch variants
	// work. The write endpoints survived the reload above (gen 2).
	post("/v1/upsert", `{"vertex":"smoke-w","vector":[1,0,0,0,0,0,0,0]}`)
	get("/v1/neighbors?vertex=smoke-w&k=3")
	post("/v1/upsert/batch", `{"items":[{"vertex":"smoke-b","vector":[0,1,0,0,0,0,0,0]}]}`)
	post("/v1/delete", `{"vertex":"smoke-w"}`)
	getCode("/v1/neighbors?vertex=smoke-w&k=3", 404)
	post("/v1/delete/batch", `{"vertices":["smoke-b"]}`)

	// A reload pointing at a missing file fails cleanly and the
	// previous generation keeps serving.
	postCode("/v1/reload", fmt.Sprintf(`{"path":%q}`, filepath.Join(dir, "gone.snap")), 400)
	get("/v1/neighbors?vertex=3&k=5")

	// Scrape /metrics after the sweep: the exposition must parse and
	// validate (unique names, monotone cumulative buckets, _sum/_count
	// consistency), and every endpoint exercised above must have
	// counted its requests. CI uploads the page as an artifact when
	// METRICS_SNAPSHOT_OUT names a path.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	page, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	expo, err := telemetry.ParseExposition(page)
	if err != nil {
		t.Fatalf("parsing /metrics: %v\n%s", err, page)
	}
	if err := expo.Validate(); err != nil {
		t.Fatalf("validating /metrics: %v\n%s", err, page)
	}
	for _, ep := range []string{
		"healthz", "stats", "neighbors", "neighbors_batch", "similarity",
		"similarity_batch", "analogy", "predict", "predict_batch", "vocab",
		"reload", "upsert", "upsert_batch", "delete", "delete_batch",
	} {
		if v, ok := expo.Value("v2v_requests_total", fmt.Sprintf("endpoint=%q", ep)); !ok || v < 1 {
			t.Errorf("endpoint %q counted %v requests (present=%v), want >= 1", ep, v, ok)
		}
	}
	if f := expo.Family("v2v_build_info"); f == nil || len(f.Series[""]) != 1 {
		t.Errorf("v2v_build_info missing or malformed: %+v", f)
	}
	if out := os.Getenv("METRICS_SNAPSHOT_OUT"); out != "" {
		if err := os.WriteFile(out, page, 0o644); err != nil {
			t.Fatalf("writing metrics snapshot: %v", err)
		}
		t.Logf("metrics snapshot written to %s (%d bytes)", out, len(page))
	}

	// Clean SIGTERM shutdown: exit code 0, within the grace period.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("server exited uncleanly after SIGTERM: %v; log:\n%s", err, logTail.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("server did not exit within 10s of SIGTERM; log:\n%s", logTail.String())
	}
}

// TestReloadShapeMismatchKeepsServing exercises the live /v1/reload
// path against a bundle whose persisted HNSW graph does not match its
// model (the loader-layer coverage for this mismatch already exists
// in internal/snapshot; this asserts the serving behavior): the
// reload must answer a clean 400 whose message names the shape
// problem, and the previous generation must keep serving queries.
func TestReloadShapeMismatchKeepsServing(t *testing.T) {
	dir := t.TempDir()
	mkModel := func(vocab int) *Model {
		m := &Model{Dim: 8, Vocab: vocab, Vectors: make([]float32, vocab*8)}
		for i := range m.Vectors {
			m.Vectors[i] = float32((i*2654435761)%997) / 997
		}
		return m
	}
	mA := mkModel(60)
	hA, err := vecstore.NewHNSW(mA.Store(), vecstore.Cosine, vecstore.HNSWConfig{M: 8, EfConstruction: 40, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	good := filepath.Join(dir, "good.snap")
	if err := snapshot.SaveBundleFile(good, mA, nil, hA.Graph()); err != nil {
		t.Fatal(err)
	}
	// The poison bundle: a 50-row model carrying the 60-node graph.
	// SaveBundle refuses to write one, so splice it byte-wise: model
	// B's snapshot followed by the graph section sliced off the good
	// bundle (each section carries its own CRC, so both still verify —
	// only the cross-section shape check can reject it, which is
	// exactly the reload path under test).
	var modelA, badBuf bytes.Buffer
	if err := snapshot.Save(&modelA, mA, nil); err != nil {
		t.Fatal(err)
	}
	goodBytes, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	if err := snapshot.Save(&badBuf, mkModel(50), nil); err != nil {
		t.Fatal(err)
	}
	badBuf.Write(goodBytes[modelA.Len():]) // the V2VHNSW1 graph section
	bad := filepath.Join(dir, "bad.snap")
	if err := os.WriteFile(bad, badBuf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	srv, err := NewQueryServer(ServeConfig{
		ModelPath: good,
		Index:     IndexConfig{Kind: HNSWIndex},
	})
	if err != nil {
		t.Fatalf("NewQueryServer: %v", err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	resp, err := http.Post(hs.URL+"/v1/reload", "application/json",
		strings.NewReader(fmt.Sprintf(`{"path":%q}`, bad)))
	if err != nil {
		t.Fatal(err)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("mismatched reload: status %d, want 400 (%v)", resp.StatusCode, body)
	}
	if !strings.Contains(body["error"], "graph") {
		t.Fatalf("reload error does not name the graph mismatch: %v", body)
	}
	if srv.Generation() != 1 {
		t.Fatalf("failed reload bumped generation to %d", srv.Generation())
	}
	// The old generation still answers.
	r2, err := http.Get(hs.URL + "/v1/neighbors?vertex=3&k=5")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != 200 {
		t.Fatalf("previous generation stopped serving: status %d", r2.StatusCode)
	}
	// And a valid reload still succeeds afterwards.
	r3, err := http.Post(hs.URL+"/v1/reload", "application/json",
		strings.NewReader(fmt.Sprintf(`{"path":%q}`, good)))
	if err != nil {
		t.Fatal(err)
	}
	r3.Body.Close()
	if r3.StatusCode != 200 || srv.Generation() != 2 {
		t.Fatalf("recovery reload: status %d, generation %d", r3.StatusCode, srv.Generation())
	}
}
