module v2v

go 1.24
