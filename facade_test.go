package v2v

import (
	"bytes"
	"strings"
	"testing"
)

// These tests exercise the thinner public wrappers so the facade has
// the same behavioural coverage as the internal packages.

func TestLinkPredictionThroughFacade(t *testing.T) {
	g, _ := CommunityBenchmark(BenchmarkConfig{
		NumCommunities: 6, CommunitySize: 30, Alpha: 0.5, InterEdges: 30, Seed: 31,
	})
	split, err := HoldOutEdges(g, 0.15, 32)
	if err != nil {
		t.Fatal(err)
	}
	opts := miniOptions(32)
	emb, err := Embed(split.Train, opts)
	if err != nil {
		t.Fatal(err)
	}
	scorers := []LinkScorer{
		EmbeddingLinkScorer(emb.Model, false),
		EmbeddingLinkScorer(emb.Model, true),
		CommonNeighborsScorer(split.Train),
		JaccardScorer(split.Train),
		AdamicAdarScorer(split.Train),
		PreferentialAttachmentScorer(split.Train),
	}
	for _, s := range scorers {
		res := EvaluateLinkScorer(s, split)
		if res.AUC < 0 || res.AUC > 1 {
			t.Fatalf("%s AUC out of range: %v", res.Scorer, res.AUC)
		}
	}
	// The embedding scorer must clearly beat chance on a community
	// graph.
	embRes := EvaluateLinkScorer(scorers[0], split)
	if embRes.AUC < 0.75 {
		t.Fatalf("embedding link AUC %.3f", embRes.AUC)
	}
}

func TestCorpusReuseMatchesPaperProtocol(t *testing.T) {
	g, truth := miniBenchmark(0.7, 33)
	opts := miniOptions(16)
	corpus, err := GenerateWalks(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if corpus.NumWalks() != g.NumVertices()*opts.WalksPerVertex {
		t.Fatalf("corpus has %d walks", corpus.NumWalks())
	}
	// Two models of different dimensionality trained on the SAME walk
	// set (the paper's Figure 9 protocol).
	for _, dim := range []int{8, 32} {
		o := miniOptions(dim)
		emb, err := EmbedWalks(g, corpus, o)
		if err != nil {
			t.Fatal(err)
		}
		if emb.Model.Dim != dim {
			t.Fatalf("dim %d model has dim %d", dim, emb.Model.Dim)
		}
		res, err := emb.DetectCommunities(CommunityConfig{K: 5, Restarts: 10, Seed: 34})
		if err != nil {
			t.Fatal(err)
		}
		if p, r, _ := EvaluateCommunities(truth, res.Partition); p < 0.8 || r < 0.8 {
			t.Fatalf("dim %d on shared corpus: %.2f/%.2f", dim, p, r)
		}
	}
}

func TestCorpusSaveLoadThroughFacade(t *testing.T) {
	g, _ := miniBenchmark(0.5, 35)
	corpus, err := GenerateWalks(g, miniOptions(8))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := corpus.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadWalks(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumTokens() != corpus.NumTokens() {
		t.Fatal("corpus round trip lost tokens")
	}
	if _, err := EmbedWalks(g, loaded, miniOptions(8)); err != nil {
		t.Fatalf("training on reloaded corpus: %v", err)
	}
}

func TestSilhouetteAndChooseKThroughFacade(t *testing.T) {
	g, truth := miniBenchmark(0.9, 36)
	emb, err := Embed(g, miniOptions(16))
	if err != nil {
		t.Fatal(err)
	}
	rows := emb.Model.Rows()
	s, err := Silhouette(rows, truth)
	if err != nil {
		t.Fatal(err)
	}
	if s < 0.2 {
		t.Fatalf("ground-truth silhouette %.3f on strong communities", s)
	}
	cfg := KMeansConfig{Restarts: 5, PlusPlus: true, Seed: 37}
	sel, err := ChooseK(rows, 2, 8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sel.K != 5 {
		t.Logf("ChooseK picked %d (true 5; silhouettes %v)", sel.K, sel.Silhouettes)
		// Allow 4-6: silhouette is a heuristic, but it must be close.
		if sel.K < 4 || sel.K > 6 {
			t.Fatalf("ChooseK picked %d, far from true 5", sel.K)
		}
	}
	// The Embedding method variant.
	sel2, err := emb.ChooseCommunities(2, 8, CommunityConfig{Seed: 38})
	if err != nil {
		t.Fatal(err)
	}
	if sel2.K < 4 || sel2.K > 6 {
		t.Fatalf("ChooseCommunities picked %d", sel2.K)
	}
}

func TestWalktrapAndSpectralThroughFacade(t *testing.T) {
	g, truth := CommunityBenchmark(BenchmarkConfig{
		NumCommunities: 4, CommunitySize: 20, Alpha: 0.7, InterEdges: 10, Seed: 41,
	})
	wt, err := Walktrap(g, WalktrapConfig{TargetK: 4})
	if err != nil {
		t.Fatal(err)
	}
	if p, r, _ := EvaluateCommunities(truth, wt.Partition); p < 0.9 || r < 0.9 {
		t.Fatalf("Walktrap facade: %.2f/%.2f", p, r)
	}
	sp, err := SpectralCommunities(g, SpectralCommunitiesConfig{K: 4, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if p, r, _ := EvaluateCommunities(truth, sp); p < 0.9 || r < 0.9 {
		t.Fatalf("Spectral facade: %.2f/%.2f", p, r)
	}
	emb, err := SpectralEmbed(g, 4, 43)
	if err != nil {
		t.Fatal(err)
	}
	if len(emb.Coordinates) != g.NumVertices() {
		t.Fatal("spectral embedding shape wrong")
	}
}

// TestEmbeddingFamilyComparison runs the three embedding-flavoured
// detectors (V2V, spectral, Walktrap) on one graph — the library's
// own mini-survey of walk-based community detection.
func TestEmbeddingFamilyComparison(t *testing.T) {
	g, truth := miniBenchmark(0.6, 44)
	opts := miniOptions(16)
	emb, err := Embed(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	v2vRes, err := emb.DetectCommunities(CommunityConfig{K: 5, Restarts: 20, Seed: 45})
	if err != nil {
		t.Fatal(err)
	}
	wt, err := Walktrap(g, WalktrapConfig{TargetK: 5})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := SpectralCommunities(g, SpectralCommunitiesConfig{K: 5, Seed: 46})
	if err != nil {
		t.Fatal(err)
	}
	for name, part := range map[string][]int{
		"v2v": v2vRes.Partition, "walktrap": wt.Partition, "spectral": sp,
	} {
		p, r, _ := EvaluateCommunities(truth, part)
		t.Logf("%s: %.3f/%.3f", name, p, r)
		if p < 0.8 || r < 0.8 {
			t.Errorf("%s below 0.8: %.3f/%.3f", name, p, r)
		}
	}
}

func TestPCAOfAndBarChart(t *testing.T) {
	rows := [][]float64{{1, 0, 0}, {2, 0, 0}, {3, 0.1, 0}, {4, 0, 0.1}}
	pca, err := PCAOf(rows, 2, 39)
	if err != nil {
		t.Fatal(err)
	}
	if pca.Components.Rows != 2 {
		t.Fatal("PCAOf shape wrong")
	}
	chart := &BarChart{Labels: []string{"a", "b"}, Values: []float64{1, 2}}
	var buf bytes.Buffer
	if err := chart.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<svg") {
		t.Fatal("no SVG")
	}
}

func TestAnalogyThroughFacade(t *testing.T) {
	// On the airports-style graph, hub-of-country-A is to spoke-of-A
	// as hub-of-B is to spoke-of-B; too noisy to assert exactly, so
	// just exercise the API and check exclusions.
	g, _ := miniBenchmark(0.8, 40)
	emb, err := Embed(g, miniOptions(16))
	if err != nil {
		t.Fatal(err)
	}
	res := emb.Model.Analogy(0, 1, 2, 5)
	if len(res) != 5 {
		t.Fatalf("analogy returned %d", len(res))
	}
	for _, r := range res {
		if r.Word == 0 || r.Word == 1 || r.Word == 2 {
			t.Fatal("query vertex leaked into analogy result")
		}
	}
}

func TestTemporalWindowOptionThroughFacade(t *testing.T) {
	b := NewGraphBuilder(0)
	b.SetDirected(true)
	for i := 0; i < 30; i++ {
		b.AddTemporalEdge(i, (i+1)%30, 1, int64(i))
	}
	g := b.Build()
	o := miniOptions(8)
	o.Strategy = TemporalWalk
	o.TemporalWindow = 2
	emb, err := Embed(g, o)
	if err != nil {
		t.Fatal(err)
	}
	if emb.Tokens == 0 {
		t.Fatal("no tokens with temporal window")
	}
}
