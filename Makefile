# Build, test and benchmark-trajectory targets. The bench targets
# snapshot the perf of the three hot paths — walk generation, CBOW
# training and top-k vector search — into BENCH_<date>.json so every
# future PR has a baseline to diff against (see cmd/benchjson).

GO      ?= go
DATE    := $(shell date -u +%Y-%m-%d)
BENCH_OUT ?= BENCH_$(DATE).json

# One representative benchmark per pipeline stage plus the full query
# matrix; keep this pattern in sync with docs/VECTORS.md.
BENCH_PATTERN ?= BenchmarkGenerateUniform$$|BenchmarkTrainCBOWNegSampling$$|BenchmarkSearch|BenchmarkPredictScaling|BenchmarkPredictCosine$$
BENCH_PKGS    ?= ./internal/walk ./internal/word2vec ./internal/vecstore ./internal/knn

.PHONY: build test race vet bench bench-short clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/walk/... ./internal/word2vec/... \
		./internal/knn/... ./internal/linkpred/... ./internal/vecstore/...

# Full trajectory snapshot (minutes; run before publishing perf claims).
bench:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem $(BENCH_PKGS) \
		| tee /dev/stderr | $(GO) run ./cmd/benchjson -date $(DATE) > $(BENCH_OUT)
	@echo wrote $(BENCH_OUT)

# Scaled-down snapshot for CI (testing.Short sizes, one iteration).
bench-short:
	$(GO) test -short -run '^$$' -bench '$(BENCH_PATTERN)' -benchtime 1x -benchmem $(BENCH_PKGS) \
		| tee /dev/stderr | $(GO) run ./cmd/benchjson -date $(DATE) > $(BENCH_OUT)
	@echo wrote $(BENCH_OUT)

clean:
	rm -f BENCH_*.json
