# Build, test and benchmark-trajectory targets. The bench targets
# snapshot the perf of the three hot paths — walk generation, CBOW
# training and top-k vector search — into BENCH_<date>.json so every
# future PR has a baseline to diff against (see cmd/benchjson); the
# loadgen targets snapshot serving latency the same way.

GO      ?= go
DATE    := $(shell date -u +%Y-%m-%d)
BENCH_OUT ?= BENCH_$(DATE).json
LOADGEN_OUT ?= LOADGEN_$(DATE).json
LOADGEN_HNSW_OUT ?= LOADGEN_HNSW_$(DATE).json
SWEEP_OUT ?= SWEEP_$(DATE).json
HNSW_OUT ?= hnsw-recall.json

# One representative benchmark per pipeline stage plus the full query
# matrix; keep this pattern in sync with docs/VECTORS.md.
BENCH_PATTERN ?= BenchmarkGenerateUniform$$|BenchmarkTrainCBOWNegSampling$$|BenchmarkSearch|BenchmarkPredictScaling|BenchmarkPredictCosine$$
BENCH_PKGS    ?= ./internal/walk ./internal/word2vec ./internal/vecstore ./internal/knn

.PHONY: build test race vet bench bench-short serve-smoke router-smoke crash-smoke crash-smoke-short \
	crash-smoke-sharded wal-fuzz loadgen-bench loadgen-short \
	loadgen-write loadgen-write-short loadgen-sharded loadgen-sweep loadgen-sweep-short \
	hnsw-recall hnsw-recall-full \
	hnsw-recall-incr hnsw-recall-incr-full hnsw-recall-sharded loadgen-hnsw clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/walk/... ./internal/word2vec/... \
		./internal/knn/... ./internal/linkpred/... ./internal/vecstore/... \
		./internal/server/... ./internal/snapshot/... ./internal/loadgen/... \
		./internal/wal/...

# End-to-end serving smoke tests: builds the v2v binary, serves a
# snapshot on a random port, issues one query per endpoint — including
# a hot reload, /v1/upsert and /v1/delete (visibility without reload,
# 404 after delete) — scrapes and validates the /metrics exposition,
# and asserts a clean SIGTERM shutdown; plus the live-reload
# shape-mismatch test (clean 400, previous generation keeps serving).
# Set METRICS_SNAPSHOT_OUT to save the scraped /metrics page (CI
# uploads it as an artifact).
METRICS_SNAPSHOT_OUT ?=
serve-smoke:
	METRICS_SNAPSHOT_OUT=$(METRICS_SNAPSHOT_OUT) $(GO) test -run 'TestServeSmokeE2E|TestReloadShapeMismatchKeepsServing|TestOverloadSheddingE2E|TestLoadgenSweepE2E' -count 1 -v .

# Distributed serving smoke: builds the real binary, spawns four
# shard processes plus a scatter-gather router over them, and requires
# every read endpoint to answer byte-for-byte identically to an
# in-process `-shards 4` server on the same bundle; then SIGKILLs one
# shard and asserts the documented degraded behavior (503 naming the
# outage, fast — never a hang — with membership visible in /stats and
# /metrics). Set ROUTER_SMOKE_OUT to save the fleet's combined log
# (CI uploads it as an artifact).
ROUTER_SMOKE_OUT ?=
router-smoke:
	ROUTER_SMOKE_OUT=$(ROUTER_SMOKE_OUT) $(GO) test -run TestRouterSmokeE2E -count 1 -v .

# Crash-recovery fault-injection e2e: builds the real binary, serves a
# snapshot with -wal, SIGKILLs the process in the middle of a mixed
# 15%-write load run, restarts over the same directory and fails if
# any acknowledged write was lost. Writes a machine-readable recovery
# report to CRASH_REPORT_OUT when set (CI uploads it as an artifact).
CRASH_REPORT_OUT ?=
crash-smoke:
	CRASH_REPORT_OUT=$(CRASH_REPORT_OUT) $(GO) test -run TestCrashRecoveryE2E -count 1 -v .

crash-smoke-short:
	CRASH_REPORT_OUT=$(CRASH_REPORT_OUT) $(GO) test -short -run 'TestCrashRecoveryE2E$$' -count 1 -v .

# Same fault-injection run against a 4-shard serving generation:
# SIGKILL mid-load, restart, and prove deterministic hash routing puts
# every acknowledged write back in the shard it was served from.
crash-smoke-sharded:
	$(GO) test -short -run TestShardedCrashRecoveryE2E -count 1 -v .

# WAL replay fuzz smoke: a short bounded -fuzz run over the frame
# decoder (the corpus seeds cover the torn/corrupt taxonomy; the fuzz
# engine mutates from there). CI runs this on every push — crashes
# land in internal/wal/testdata/fuzz for reproduction.
FUZZTIME ?= 15s
wal-fuzz:
	$(GO) test -run FuzzWALReplay -fuzz FuzzWALReplay -fuzztime $(FUZZTIME) ./internal/wal

# Full trajectory snapshot (minutes; run before publishing perf claims).
bench:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem $(BENCH_PKGS) \
		| tee /dev/stderr | $(GO) run ./cmd/benchjson -date $(DATE) > $(BENCH_OUT)
	@echo wrote $(BENCH_OUT)

# Scaled-down snapshot for CI (testing.Short sizes, one iteration).
bench-short:
	$(GO) test -short -run '^$$' -bench '$(BENCH_PATTERN)' -benchtime 1x -benchmem $(BENCH_PKGS) \
		| tee /dev/stderr | $(GO) run ./cmd/benchjson -date $(DATE) > $(BENCH_OUT)
	@echo wrote $(BENCH_OUT)

# Serving-latency snapshot: loadgen against an in-process server over
# a synthetic 10k x 64 model (exact index, cache covering the vocab,
# one warm-up pass), neighbors-heavy mix. Writes LOADGEN_<date>.json
# in the same trajectory format as BENCH_<date>.json.
loadgen-bench:
	$(GO) run ./cmd/loadgen -selfserve -vectors 10000 -dim 64 -cache 16384 \
		-warmup 1 -duration 10s -workers 8 \
		-mix 'neighbors=0.85,similarity=0.05,predict=0.05,neighbors-batch=0.05' \
		-out $(LOADGEN_OUT)
	@echo wrote $(LOADGEN_OUT)

# HNSW quality gate: deterministic store, recall@10 vs the exact
# index, single-core qps for both. The CI job runs the small store;
# hnsw-recall-full is the acceptance configuration (100k x 128,
# recall >= 0.95 at >= 5x exact single-core qps) whose numbers are
# quoted in docs/INDEXES.md.
hnsw-recall:
	$(GO) run ./cmd/hnswrecall -n 20000 -dim 64 -queries 200 -min-recall 0.95 -out $(HNSW_OUT)
	@echo wrote $(HNSW_OUT)

hnsw-recall-full:
	$(GO) run ./cmd/hnswrecall -n 100000 -dim 128 -queries 500 -min-recall 0.95 -min-speedup 5 -out $(HNSW_OUT)
	@echo wrote $(HNSW_OUT)

# Incremental-insert quality gate: half the rows enter the graph
# through MutableIndex.Insert (the online-upsert path) instead of the
# batch build; recall@10 must hold the same floor. The -full variant
# is the ISSUE 5 acceptance run quoted in docs/INDEXES.md.
hnsw-recall-incr:
	$(GO) run ./cmd/hnswrecall -n 20000 -dim 64 -queries 200 -incremental 0.5 -min-recall 0.95 -out $(HNSW_OUT)
	@echo wrote $(HNSW_OUT)

hnsw-recall-incr-full:
	$(GO) run ./cmd/hnswrecall -n 100000 -dim 128 -queries 500 -incremental 0.5 -min-recall 0.95 -out $(HNSW_OUT)
	@echo wrote $(HNSW_OUT)

# Serving-latency snapshot through the HNSW index: identical harness
# to loadgen-bench with the selfserve server behind `-index hnsw`.
# Separate default output so the exact-baseline and HNSW trajectories
# never overwrite each other.
loadgen-hnsw:
	$(GO) run ./cmd/loadgen -selfserve -vectors 10000 -dim 64 -cache 16384 \
		-index hnsw -warmup 1 -duration 10s -workers 8 \
		-mix 'neighbors=0.85,similarity=0.05,predict=0.05,neighbors-batch=0.05' \
		-out $(LOADGEN_HNSW_OUT)
	@echo wrote $(LOADGEN_HNSW_OUT)

# Mixed read/write serving snapshot: 15% of operations are
# /v1/upsert//v1/delete writes against the live index (no reloads).
# The acceptance bar is zero errors; the numbers land in
# LOADGEN_<date>.json alongside the read-only trajectories.
loadgen-write:
	$(GO) run ./cmd/loadgen -selfserve -vectors 10000 -dim 64 -cache 16384 \
		-warmup 1 -duration 10s -workers 8 -write-fraction 0.15 \
		-mix 'neighbors=0.85,similarity=0.05,predict=0.05,neighbors-batch=0.05' \
		-out $(LOADGEN_OUT)
	@echo wrote $(LOADGEN_OUT)

loadgen-write-short:
	$(GO) run ./cmd/loadgen -selfserve -vectors 2000 -dim 32 -cache 4096 \
		-warmup 1 -duration 2s -workers 4 -write-fraction 0.15 \
		-mix 'neighbors=0.85,similarity=0.05,predict=0.05,neighbors-batch=0.05' \
		-out $(LOADGEN_OUT)
	@echo wrote $(LOADGEN_OUT)

# Sharded serving smoke: the loadgen-write mix against a 4-shard
# scatter-gather generation (routed writes, fan-out reads, per-shard
# compaction — zero errors is the bar). CI runs this on every push;
# the full-size variant regenerates the LOADGEN_<date>.json sharded
# rows quoted in docs/SERVING.md.
loadgen-sharded:
	$(GO) run ./cmd/loadgen -selfserve -vectors 2000 -dim 32 -cache 4096 \
		-shards 4 -warmup 1 -duration 2s -workers 4 -write-fraction 0.15 \
		-mix 'neighbors=0.85,similarity=0.05,predict=0.05,neighbors-batch=0.05' \
		-out $(LOADGEN_OUT)
	@echo wrote $(LOADGEN_OUT)

# Sharded HNSW quality gate: recall@10 and qps through the 8-shard
# scatter-gather coordinator vs the exact index on the acceptance
# store (100k x 128 clustered).
hnsw-recall-sharded:
	$(GO) run ./cmd/hnswrecall -n 100000 -dim 128 -queries 500 -shards 8 \
		-min-recall 0.95 -out $(HNSW_OUT)
	@echo wrote $(HNSW_OUT)

# Offered-QPS sweep: step the rate up a ladder against the in-process
# server and locate the latency knee (first step whose p99 blows past
# 3x the low-load baseline, or whose requests fail). One BENCH-schema
# row per step plus the SweepKnee row land in SWEEP_<date>.json — the
# committed capacity trajectory the overload docs quote.
loadgen-sweep:
	$(GO) run ./cmd/loadgen -selfserve -vectors 10000 -dim 64 -cache 16384 \
		-warmup 1 -duration 5s -workers 8 \
		-sweep 500,1000,2000,4000,8000,16000,32000 \
		-out $(SWEEP_OUT)
	@echo wrote $(SWEEP_OUT)

# Scaled-down sweep for CI: a short ladder, enough to prove the sweep
# machinery and the JSON shape on every push.
loadgen-sweep-short:
	$(GO) run ./cmd/loadgen -selfserve -vectors 2000 -dim 32 -cache 4096 \
		-warmup 1 -duration 2s -workers 4 \
		-sweep 500,1000,2000,4000 \
		-out $(SWEEP_OUT)
	@echo wrote $(SWEEP_OUT)

# Scaled-down serving snapshot for CI.
loadgen-short:
	$(GO) run ./cmd/loadgen -selfserve -vectors 2000 -dim 32 -cache 4096 \
		-warmup 1 -duration 2s -workers 4 \
		-mix 'neighbors=0.85,similarity=0.05,predict=0.05,neighbors-batch=0.05' \
		-out $(LOADGEN_OUT)
	@echo wrote $(LOADGEN_OUT)

clean:
	rm -f BENCH_*.json LOADGEN_*.json LOADGEN_HNSW_*.json SWEEP_*.json hnsw-recall*.json
