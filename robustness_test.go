package v2v

import (
	"testing"

	"v2v/internal/xrand"
)

// perturbEdges returns a copy of g with a fraction of its edges
// replaced by uniformly random edges — the "errors in data" scenario
// the paper raises in Section III-C ("We can also expect the V2V
// approach to be less sensitive to errors in data ... This aspect
// needs further investigation"). This test is that investigation at
// laptop scale.
func perturbEdges(g *Graph, fraction float64, seed uint64) *Graph {
	rng := xrand.New(seed)
	edges := g.Edges()
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	replace := int(fraction * float64(len(edges)))
	n := g.NumVertices()
	b := NewGraphBuilder(n)
	b.SetDeduplicate(true)
	for _, e := range edges[replace:] {
		b.AddEdge(e.From, e.To)
	}
	for i := 0; i < replace; i++ {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v {
			v = (v + 1) % n
		}
		b.AddEdge(u, v)
	}
	return b.Build()
}

// TestRobustnessToEdgeNoise perturbs 10% of the benchmark's edges and
// verifies V2V still recovers the community structure well, and that
// its degradation is graceful (within 15 F1 points of the clean run).
func TestRobustnessToEdgeNoise(t *testing.T) {
	g, truth := CommunityBenchmark(BenchmarkConfig{
		NumCommunities: 5, CommunitySize: 30, Alpha: 0.6, InterEdges: 30, Seed: 23,
	})
	noisy := perturbEdges(g, 0.10, 24)

	run := func(graph *Graph) float64 {
		opts := DefaultOptions(16)
		opts.WalksPerVertex = 8
		opts.WalkLength = 40
		opts.Epochs = 4
		opts.Seed = 25
		emb, err := Embed(graph, opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := emb.DetectCommunities(CommunityConfig{K: 5, Restarts: 20, Seed: 26})
		if err != nil {
			t.Fatal(err)
		}
		f1, err := PairwiseF1(truth, res.Partition)
		if err != nil {
			t.Fatal(err)
		}
		return f1
	}

	clean := run(g)
	perturbed := run(noisy)
	t.Logf("V2V pairwise F1: clean %.3f, 10%% edge noise %.3f", clean, perturbed)
	if clean < 0.85 {
		t.Fatalf("clean baseline too weak: %.3f", clean)
	}
	if perturbed < clean-0.15 {
		t.Fatalf("V2V degraded sharply under noise: %.3f -> %.3f", clean, perturbed)
	}

	// The graph baselines on the same noisy graph, for the comparison
	// the paper calls for (reported, not asserted: at this scale CNM
	// usually degrades more than V2V but both remain usable).
	cnm, err := CNM(noisy, CNMConfig{TargetK: 5})
	if err != nil {
		t.Fatal(err)
	}
	cnmF1, _ := PairwiseF1(truth, cnm.Partition)
	t.Logf("CNM pairwise F1 on the noisy graph: %.3f", cnmF1)
}

// TestRobustnessIncreasingNoise checks that quality decays
// monotonically-ish (allowing one inversion) as noise grows — no
// cliff at small noise levels.
func TestRobustnessIncreasingNoise(t *testing.T) {
	g, truth := CommunityBenchmark(BenchmarkConfig{
		NumCommunities: 4, CommunitySize: 25, Alpha: 0.4, InterEdges: 20, Seed: 27,
	})
	var f1s []float64
	for _, noise := range []float64{0, 0.1, 0.6} {
		gr := g
		if noise > 0 {
			gr = perturbEdges(g, noise, 28)
		}
		opts := DefaultOptions(16)
		opts.WalksPerVertex = 8
		opts.WalkLength = 40
		opts.Epochs = 4
		opts.Seed = 29
		emb, err := Embed(gr, opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := emb.DetectCommunities(CommunityConfig{K: 4, Restarts: 20, Seed: 30})
		if err != nil {
			t.Fatal(err)
		}
		f1, err := PairwiseF1(truth, res.Partition)
		if err != nil {
			t.Fatal(err)
		}
		f1s = append(f1s, f1)
	}
	t.Logf("F1 at noise 0 / 0.1 / 0.6: %.3f / %.3f / %.3f", f1s[0], f1s[1], f1s[2])
	if f1s[1] < f1s[0]-0.15 {
		t.Fatalf("10%% noise caused a cliff: %.3f -> %.3f", f1s[0], f1s[1])
	}
	if f1s[2] > f1s[1] {
		t.Fatalf("60%% noise should hurt more than 10%%: %.3f vs %.3f", f1s[2], f1s[1])
	}
	if f1s[2] > 0.9 {
		t.Fatalf("60%% noise should visibly degrade quality, got %.3f", f1s[2])
	}
}
