// Command benchjson converts `go test -bench` text output (read from
// stdin) into the repository's benchmark-trajectory JSON format, so
// every PR can snapshot walk/train/query performance as
// BENCH_<date>.json and future changes have a baseline to diff
// against (see the Makefile's bench targets and docs/VECTORS.md).
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson [-date 2026-07-26] > BENCH_2026-07-26.json
//
// Standard columns (iterations, ns/op, B/op, allocs/op) and custom
// b.ReportMetric columns (e.g. "precision", "Mtokens/s") are both
// captured; goos/goarch/cpu/pkg header lines annotate the snapshot.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Package    string             `json:"package,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Snapshot is the emitted document.
type Snapshot struct {
	Date       string      `json:"date"`
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	date := flag.String("date", time.Now().UTC().Format("2006-01-02"), "snapshot date stamp")
	flag.Parse()

	snap := Snapshot{
		Date:      *date,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg: "))
			continue
		case strings.HasPrefix(line, "cpu: "):
			snap.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu: "))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		b, ok := parseBenchLine(line)
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: skipping unparsable line: %s\n", line)
			continue
		}
		b.Package = pkg
		snap.Benchmarks = append(snap.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(snap.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseBenchLine parses one result line, e.g.
//
//	BenchmarkSearchExactSerial-8  100  11951772 ns/op  320 B/op  2 allocs/op
//	BenchmarkFig5PrecisionVsAlpha  5  1.2e8 ns/op  0.93 precision
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return Benchmark{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix go test appends.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	metrics := map[string]float64{}
	// Remaining fields come in "<value> <unit>" pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		metrics[fields[i+1]] = v
	}
	if len(metrics) == 0 {
		return Benchmark{}, false
	}
	return Benchmark{Name: name, Iterations: iters, Metrics: metrics}, true
}
