// Command predict runs the paper's feature-prediction protocol on a
// labelled graph: embed with V2V, then k-NN-classify vertex labels
// under cosine distance with k-fold cross-validation, or fill in
// missing labels.
//
// Usage:
//
//	predict -in graph.txt -labels labels.txt [-k 3] [-folds 10]
//	        [-dim 50] [-predict-missing] [-seed 1]
//	        [-index exact|ivf|hnsw] [-nlists 0] [-nprobe 0]
//	        [-m 0] [-efc 0] [-efs 0]
//	        [-model-out model.snap]
//
// -model-out additionally saves the trained embedding as a binary
// snapshot, ready to be served with `v2v serve` (docs/SERVING.md).
//
// labels.txt holds one label per line in vertex order; with
// -predict-missing, lines equal to "?" are predicted from the rest
// and the completed list is printed.
//
// -index ivf and -index hnsw serve -predict-missing through an
// approximate index (see docs/INDEXES.md for the selection guide and
// the nlists/nprobe and m/efc/efs recall trade-offs).
// Cross-validation always uses the exact index so reported accuracies
// stay comparable with the paper.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"v2v"
)

func main() {
	var (
		in      = flag.String("in", "", "input edge list (required)")
		labelsF = flag.String("labels", "", "labels file (required)")
		k       = flag.Int("k", 3, "nearest neighbours voting (paper's best: 3)")
		folds   = flag.Int("folds", 10, "cross-validation folds")
		dim     = flag.Int("dim", 50, "embedding dimensions (paper's best: 40-70)")
		walks   = flag.Int("walks", 10, "walks per vertex")
		length  = flag.Int("length", 80, "walk length")
		missing = flag.Bool("predict-missing", false, "predict '?' labels instead of cross-validating")
		dirFlag = flag.Bool("directed", false, "treat edges as directed")
		seed    = flag.Uint64("seed", 1, "random seed")
		index   = flag.String("index", "exact", "similarity index for -predict-missing: exact, ivf or hnsw")
		nlists  = flag.Int("nlists", 0, "ivf: coarse cells (0 = sqrt(n))")
		nprobe  = flag.Int("nprobe", 0, "ivf: cells scanned per query (0 = nlists/4)")
		hm      = flag.Int("m", 0, "hnsw: links per node per level (0 = 16)")
		efc     = flag.Int("efc", 0, "hnsw: construction beam width (0 = 200)")
		efs     = flag.Int("efs", 0, "hnsw: query beam width (0 = 128)")
		modelF  = flag.String("model-out", "", "also save the trained embedding here as a binary snapshot (servable with `v2v serve`)")
	)
	flag.Parse()
	if *in == "" || *labelsF == "" {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	g, err := v2v.ReadEdgeList(f, v2v.EdgeListOptions{Directed: *dirFlag})
	f.Close()
	if err != nil {
		fatal(err)
	}

	raw, names, err := readLabels(*labelsF)
	if err != nil {
		fatal(err)
	}
	if len(raw) != g.NumVertices() {
		fatal(fmt.Errorf("%d labels for %d vertices", len(raw), g.NumVertices()))
	}

	opts := v2v.DefaultOptions(*dim)
	opts.WalksPerVertex = *walks
	opts.WalkLength = *length
	opts.Seed = *seed
	switch *index {
	case "exact":
		opts.Index = v2v.IndexConfig{Kind: v2v.ExactIndex}
	case "ivf":
		opts.Index = v2v.IndexConfig{Kind: v2v.IVFIndex, NLists: *nlists, NProbe: *nprobe, Seed: *seed}
	case "hnsw":
		opts.Index = v2v.IndexConfig{Kind: v2v.HNSWIndex, M: *hm, EfConstruction: *efc, EfSearch: *efs, Seed: *seed}
	default:
		fatal(fmt.Errorf("unknown index kind %q (want exact, ivf or hnsw)", *index))
	}
	if err := opts.Index.Validate(); err != nil {
		fatal(err)
	}
	emb, err := v2v.Embed(g, opts)
	if err != nil {
		fatal(err)
	}
	if *modelF != "" {
		f, err := os.Create(*modelF)
		if err != nil {
			fatal(err)
		}
		tokens := make([]string, g.NumVertices())
		for v := range tokens {
			tokens[v] = g.Name(v)
		}
		if err := v2v.SaveSnapshot(f, emb.Model, tokens); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}

	if *missing {
		completed, err := emb.PredictLabels(raw, *k)
		if err != nil {
			fatal(err)
		}
		for _, l := range completed {
			fmt.Println(names[l])
		}
		return
	}
	for _, l := range raw {
		if l < 0 {
			fatal(fmt.Errorf("missing label without -predict-missing"))
		}
	}
	acc, err := emb.CrossValidateLabels(raw, *k, *folds, *seed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges, %d classes\n", g.NumVertices(), g.NumEdges(), len(names))
	fmt.Printf("%d-fold cross-validated %d-NN accuracy at dim %d: %.4f\n", *folds, *k, *dim, acc)
}

// readLabels reads one label per line; "?" means missing (-1). The
// returned names slice maps dense label ids back to the original
// strings.
func readLabels(path string) ([]int, []string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	var labels []int
	index := map[string]int{}
	var names []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if line == "?" {
			labels = append(labels, -1)
			continue
		}
		id, ok := index[line]
		if !ok {
			id = len(names)
			index[line] = id
			names = append(names, line)
		}
		labels = append(labels, id)
	}
	return labels, names, sc.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "predict:", err)
	os.Exit(1)
}
