// Command hnswrecall measures HNSW quality against ground truth: it
// builds a deterministic synthetic store, an exact index and an HNSW
// index over it, then reports recall@k and single-core queries/sec
// for both, as human-readable text on stderr and as JSON (compatible
// with the BENCH_<date>.json trajectory format) on the output file.
// It exits non-zero when recall (or, if -min-speedup is set, the
// HNSW/exact speedup) falls below the acceptance floor — the CI
// hnsw-recall job is exactly this tool on a small store.
//
// Usage:
//
//	hnswrecall [-n 100000] [-dim 128] [-k 10] [-queries 500]
//	           [-dist clustered|gaussian] [-clusters 1000]
//	           [-m 0] [-efc 0] [-efs 0] [-seed 1] [-shards 0]
//	           [-incremental 0] [-min-recall 0.95] [-min-speedup 0]
//	           [-save bundle.snap] [-out recall.json]
//
// -shards N (N > 1) builds a sharded coordinator instead of a single
// graph: rows are hash-partitioned into N independent HNSW shards
// built concurrently, and each query scatter-gathers across all of
// them. With -save the bundle holds one graph per shard (servable
// with `v2v serve -index hnsw -shards N`).
//
// -incremental f (0 < f < 1) builds the graph over the first (1-f)
// fraction of rows by batch insertion and adds the remaining rows one
// at a time through MutableIndex.Insert — the online-upsert code path
// — before measuring recall. The ISSUE 5 acceptance run is
// `-incremental 0.5 -min-recall 0.95` on the 100k clustered store;
// the in-tree TestIncrementalHNSWRecallParity asserts the same
// batch-vs-incremental parity at test scale.
//
// -dist selects the store distribution: "clustered" (the default)
// places points around well-separated anchors, the shape of trained
// graph embeddings — the workload this system serves; "gaussian" is
// unstructured noise, the adversarial worst case for any proximity
// graph (documented, not gated — see docs/INDEXES.md for both
// numbers).
//
// -save additionally writes the synthetic model plus the built graph
// as a snapshot bundle, ready for `v2v serve -index hnsw` (the
// serving-path acceptance run; see docs/INDEXES.md).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"v2v/internal/snapshot"
	"v2v/internal/vecstore"
	"v2v/internal/word2vec"
	"v2v/internal/xrand"
)

// benchmark mirrors cmd/benchjson's Benchmark so the output lands in
// the shared trajectory schema.
type benchmark struct {
	Name       string             `json:"name"`
	Package    string             `json:"package,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// snapshotDoc mirrors cmd/benchjson's Snapshot.
type snapshotDoc struct {
	Date       string      `json:"date"`
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	Benchmarks []benchmark `json:"benchmarks"`
}

func main() {
	var (
		n          = flag.Int("n", 100000, "store rows")
		dim        = flag.Int("dim", 128, "store dimensionality")
		k          = flag.Int("k", 10, "neighbors per query")
		queries    = flag.Int("queries", 500, "measured queries")
		dist       = flag.String("dist", "clustered", "store distribution: clustered (embedding-like) or gaussian (adversarial)")
		clusters   = flag.Int("clusters", 1000, "clustered: number of anchors")
		m          = flag.Int("m", 0, "hnsw links per node per level (0 = 16)")
		efc        = flag.Int("efc", 0, "hnsw construction beam width (0 = 200)")
		efs        = flag.Int("efs", 0, "hnsw query beam width (0 = 128)")
		seed       = flag.Uint64("seed", 1, "store and level-sampling seed")
		shardsN    = flag.Int("shards", 0, "partition rows across N HNSW shards: concurrent builds, scatter-gather queries (0/1 = unsharded)")
		incr       = flag.Float64("incremental", 0, "build this fraction of rows via incremental MutableIndex.Insert instead of the batch build (0 disables)")
		minRecall  = flag.Float64("min-recall", 0.95, "fail below this recall@k")
		minSpeedup = flag.Float64("min-speedup", 0, "fail below this single-core qps ratio (0 = no floor)")
		savePath   = flag.String("save", "", "also write the model + graph bundle here (servable with `v2v serve -index hnsw`)")
		out        = flag.String("out", "", "write the JSON snapshot here (default stdout)")
		date       = flag.String("date", time.Now().UTC().Format("2006-01-02"), "snapshot date stamp")
	)
	flag.Parse()
	if *incr < 0 || *incr >= 1 {
		fatal(fmt.Errorf("-incremental %g outside [0, 1)", *incr))
	}

	model := word2vec.NewModel(*n, *dim)
	rng := xrand.New(*seed)
	switch *dist {
	case "clustered":
		// Points around well-separated anchors: the shape of trained
		// embeddings (vertices of one community land near each other).
		anchors := make([]float64, *clusters**dim)
		for i := range anchors {
			anchors[i] = rng.NormFloat64() * 5
		}
		for i := 0; i < *n; i++ {
			a := anchors[rng.Intn(*clusters)**dim:]
			row := model.Vectors[i**dim : (i+1)**dim]
			for j := range row {
				row[j] = float32(a[j] + rng.NormFloat64()*0.5)
			}
		}
	case "gaussian":
		// Structureless noise — the worst case for a proximity graph.
		for i := range model.Vectors {
			model.Vectors[i] = float32(rng.NormFloat64())
		}
	default:
		fatal(fmt.Errorf("unknown -dist %q (want clustered or gaussian)", *dist))
	}
	store := model.Store()

	exact := vecstore.NewExact(store, vecstore.Cosine, 1)
	hcfg := vecstore.HNSWConfig{M: *m, EfConstruction: *efc, EfSearch: *efs, Seed: *seed}
	sharded := *shardsN > 1
	shardCfg := vecstore.Config{
		Kind: vecstore.KindHNSW, Shards: *shardsN,
		M: *m, EfConstruction: *efc, EfSearch: *efs, Seed: *seed,
	}
	var h *vecstore.HNSW
	var sh *vecstore.Sharded
	var err error
	build := func(s *vecstore.Store) error {
		if sharded {
			sh, err = vecstore.OpenSharded(s, shardCfg)
		} else {
			h, err = vecstore.NewHNSW(s, vecstore.Cosine, hcfg)
		}
		return err
	}
	insertRow := func(v []float32) error {
		if sharded {
			_, err := sh.Insert(v)
			return err
		}
		_, err := h.Insert(v)
		return err
	}
	search := func(q []float32, k int) []vecstore.Result {
		if sharded {
			return sh.Search(q, k)
		}
		return h.Search(q, k)
	}
	var buildSecs, insertSecs float64
	inserted := 0
	buildStart := time.Now()
	if *incr == 0 {
		if err := build(store); err != nil {
			fatal(err)
		}
		buildSecs = time.Since(buildStart).Seconds()
	} else {
		// Batch-build the first (1-f) of the rows over a copied prefix
		// store, then grow it row by row through the online-insert
		// path. Row IDs line up with the full store, so the exact
		// ground truth below applies unchanged.
		split := int(float64(*n) * (1 - *incr))
		if split < 1 {
			split = 1
		}
		prefix := make([]int, split)
		for i := range prefix {
			prefix[i] = i
		}
		grown := store.Gather(prefix)
		if err := build(grown); err != nil {
			fatal(err)
		}
		buildSecs = time.Since(buildStart).Seconds()
		insertStart := time.Now()
		for i := split; i < *n; i++ {
			if err := insertRow(store.Row(i)); err != nil {
				fatal(err)
			}
		}
		insertSecs = time.Since(insertStart).Seconds()
		inserted = *n - split
		fmt.Fprintf(os.Stderr, "hnswrecall: incremental phase: %d rows inserted in %.1fs (%.0f inserts/s)\n",
			inserted, insertSecs, float64(inserted)/insertSecs)
	}
	if sharded {
		fmt.Fprintf(os.Stderr, "hnswrecall: %d x %d store; %d-shard hnsw built in %.1fs (m=%d efc=%d efs=%d)\n",
			*n, *dim, sh.NumShards(), buildSecs+insertSecs, *m, *efc, *efs)
	} else {
		fmt.Fprintf(os.Stderr, "hnswrecall: %d x %d store; hnsw built in %.1fs (m=%d efc=%d efs=%d, max level %d)\n",
			*n, *dim, buildSecs+insertSecs, h.M(), *efc, h.EfSearch(), h.MaxLevel())
	}

	if *savePath != "" {
		if sharded {
			graphs, err := sh.Graphs()
			if err != nil {
				fatal(err)
			}
			if err := snapshot.SaveShardedBundleFile(*savePath, model, nil, graphs); err != nil {
				fatal(err)
			}
		} else if err := snapshot.SaveBundleFile(*savePath, model, nil, h.Graph()); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "hnswrecall: wrote model + graph bundle to %s\n", *savePath)
	}

	qs := make([][]float32, *queries)
	qrng := xrand.New(*seed + 0x9E37)
	for i := range qs {
		qs[i] = store.Row(qrng.Intn(*n))
	}

	// Ground truth and exact timing in one sequential single-core pass.
	truth := make([][]vecstore.Result, len(qs))
	exactStart := time.Now()
	for i, q := range qs {
		truth[i] = exact.Search(q, *k)
	}
	exactSecs := time.Since(exactStart).Seconds()

	approx := make([][]vecstore.Result, len(qs))
	hnswStart := time.Now()
	for i, q := range qs {
		approx[i] = search(q, *k)
	}
	hnswSecs := time.Since(hnswStart).Seconds()

	hits, total := 0, 0
	for i := range qs {
		in := make(map[int]bool, len(approx[i]))
		for _, r := range approx[i] {
			in[r.ID] = true
		}
		for _, r := range truth[i] {
			total++
			if in[r.ID] {
				hits++
			}
		}
	}
	recall := float64(hits) / float64(total)
	qpsExact := float64(len(qs)) / exactSecs
	qpsHNSW := float64(len(qs)) / hnswSecs
	speedup := qpsHNSW / qpsExact
	fmt.Fprintf(os.Stderr, "hnswrecall: recall@%d = %.4f over %d queries; single-core qps exact %.0f, hnsw %.0f (%.1fx)\n",
		*k, recall, len(qs), qpsExact, qpsHNSW, speedup)

	name := fmt.Sprintf("HNSWRecallVsExact/%s/n=%d/dim=%d", *dist, *n, *dim)
	metrics := map[string]float64{
		fmt.Sprintf("recall@%d", *k): recall,
		"qps-exact-1core":            qpsExact,
		"qps-hnsw-1core":             qpsHNSW,
		"speedup":                    speedup,
		"build-seconds":              buildSecs,
	}
	if inserted > 0 {
		name = fmt.Sprintf("HNSWIncrementalRecallVsExact/%s/n=%d/dim=%d/incr=%g", *dist, *n, *dim, *incr)
		metrics["insert-seconds"] = insertSecs
		metrics["inserts-per-second"] = float64(inserted) / insertSecs
	}
	if sharded {
		name = fmt.Sprintf("ShardedHNSWRecallVsExact/%s/n=%d/dim=%d/shards=%d", *dist, *n, *dim, *shardsN)
		metrics["shards"] = float64(*shardsN)
	}
	doc := snapshotDoc{
		Date:      *date,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Benchmarks: []benchmark{{
			Name:       name,
			Package:    "v2v/internal/vecstore",
			Iterations: int64(len(qs)),
			Metrics:    metrics,
		}},
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fatal(err)
	}

	if recall < *minRecall {
		fatal(fmt.Errorf("recall@%d = %.4f below the %.2f acceptance floor", *k, recall, *minRecall))
	}
	if *minSpeedup > 0 && speedup < *minSpeedup {
		fatal(fmt.Errorf("single-core speedup %.2fx below the %.1fx acceptance floor", speedup, *minSpeedup))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hnswrecall:", err)
	os.Exit(1)
}
