// Command loadgen benchmarks a running `v2v serve` instance: it fires
// a configurable mix of endpoint queries at a target QPS from N
// concurrent workers and reports throughput and p50/p95/p99/p99.9
// latency (from HDR histograms merged across workers),
// as human-readable text on stderr and as JSON (compatible with the
// BENCH_<date>.json trajectory format) on the output file.
//
// Against a running server:
//
//	loadgen -addr http://127.0.0.1:8080 -duration 10s -workers 8 \
//	        -qps 0 -mix 'neighbors=0.8,similarity=0.1,predict=0.1' \
//	        -k 10 -out loadgen.json
//
// Self-contained (spins an in-process server over a synthetic model —
// the zero-setup smoke benchmark used by CI):
//
//	loadgen -selfserve -vectors 10000 -dim 64 -duration 5s
//
// Mixed read/write (writes go to /v1/upsert and /v1/delete in a
// generator-owned token namespace, so read queries never 404):
//
//	loadgen -selfserve -write-fraction 0.15 -duration 10s
//
// A qps of 0 runs closed-loop at maximum speed; otherwise arrival
// times are paced open-loop at the target aggregate rate. See
// docs/SERVING.md.
//
// Sweep mode steps the offered rate up a ladder and reports where the
// latency knee sits (one BENCH-schema row per step plus a SweepKnee
// row):
//
//	loadgen -selfserve -sweep 500,1000,2000,4000,8000 -duration 3s
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"v2v/internal/loadgen"
	"v2v/internal/server"
	"v2v/internal/vecstore"
	"v2v/internal/word2vec"
	"v2v/internal/xrand"
)

func main() {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:8080", "base URL of the target server; comma-separate several to spread workers round-robin across replicas")
		workers  = flag.Int("workers", 0, "concurrent client workers (0 = GOMAXPROCS)")
		qps      = flag.Float64("qps", 0, "target aggregate requests/sec (0 = unlimited)")
		requests = flag.Int("requests", 0, "total requests (0 = run for -duration)")
		duration = flag.Duration("duration", 10*time.Second, "run length when -requests is 0")
		mixFlag  = flag.String("mix", "neighbors=1", "operation mix, e.g. 'neighbors=0.8,similarity=0.1,upsert=0.07,delete=0.03'")
		writeF   = flag.Float64("write-fraction", 0, "rescale the mix so this fraction of ops are writes (upsert 2:1 delete); the server must not be read-only")
		k        = flag.Int("k", 10, "top-k per neighbors/analogy query")
		batch    = flag.Int("batch", 16, "queries per batch request")
		warmup   = flag.Int("warmup", 0, "unmeasured warm-up passes over the vocabulary before the clock starts")
		seed     = flag.Uint64("seed", 1, "query sampling seed")
		sweep    = flag.String("sweep", "", "offered-QPS ladder, e.g. '500,1000,2000,4000'; runs one step per rung (-duration or -requests each) and reports the latency knee")
		kneeF    = flag.Float64("knee-factor", 0, "sweep: declare the knee when a step's p99 exceeds this multiple of the first step's (0 = 3)")
		out      = flag.String("out", "", "write the JSON snapshot here (default stdout)")
		journal  = flag.String("write-journal", "", "journal every write op (one JSON event per line) here; crash harnesses verify acked writes against it")
		date     = flag.String("date", time.Now().UTC().Format("2006-01-02"), "snapshot date stamp")

		selfserve = flag.Bool("selfserve", false, "spin an in-process server over a synthetic model and benchmark it")
		vectors   = flag.Int("vectors", 10000, "selfserve: synthetic model size")
		dim       = flag.Int("dim", 64, "selfserve: synthetic model dimensionality")
		cacheSize = flag.Int("cache", 4096, "selfserve: server response-cache entries (negative disables)")
		index     = flag.String("index", "exact", "selfserve: index kind (exact, ivf or hnsw)")
		nlists    = flag.Int("nlists", 0, "selfserve ivf: coarse cells (0 = sqrt(n))")
		nprobe    = flag.Int("nprobe", 0, "selfserve ivf: cells scanned per query (0 = nlists/4)")
		hnswM     = flag.Int("m", 0, "selfserve hnsw: links per node per level (0 = 16)")
		efc       = flag.Int("efc", 0, "selfserve hnsw: construction beam width (0 = 200)")
		efs       = flag.Int("efs", 0, "selfserve hnsw: query beam width (0 = 128)")
		shards    = flag.Int("shards", 0, "selfserve: partition rows across N index shards (0/1 = unsharded)")
	)
	flag.Parse()

	idxCfg := vecstore.Config{
		Seed:           *seed,
		NLists:         *nlists,
		NProbe:         *nprobe,
		M:              *hnswM,
		EfConstruction: *efc,
		EfSearch:       *efs,
		Shards:         *shards,
	}
	switch *index {
	case "exact":
		idxCfg.Kind = vecstore.KindExact
	case "ivf":
		idxCfg.Kind = vecstore.KindIVF
	case "hnsw":
		idxCfg.Kind = vecstore.KindHNSW
	default:
		fatal(fmt.Errorf("unknown index kind %q (want exact, ivf or hnsw)", *index))
	}
	if err := idxCfg.Validate(); err != nil {
		fatal(err)
	}

	mix, err := loadgen.ParseMix(*mixFlag)
	if err != nil {
		fatal(err)
	}
	if mix, err = loadgen.WithWriteFraction(mix, *writeF); err != nil {
		fatal(err)
	}

	base := *addr
	if *selfserve {
		var stop func()
		base, stop, err = startSelfServe(*vectors, *dim, *seed, *cacheSize, idxCfg)
		if err != nil {
			fatal(err)
		}
		defer stop()
		kind := idxCfg.Kind.String()
		if idxCfg.Shards > 1 {
			kind = fmt.Sprintf("%d-shard %s", idxCfg.Shards, idxCfg.Kind)
		}
		fmt.Fprintf(os.Stderr, "loadgen: self-serving %d x %d synthetic model at %s (%s index)\n",
			*vectors, *dim, base, kind)
	}

	// Comma-separated -addr spreads workers round-robin over several
	// targets (loadgen.Config.BaseURLs); -selfserve replaced base with
	// its single in-process server above, so it is exempt.
	var bases []string
	for _, b := range strings.Split(base, ",") {
		if b = strings.TrimSpace(b); b != "" {
			bases = append(bases, b)
		}
	}
	if len(bases) == 0 {
		fatal(fmt.Errorf("-addr is empty"))
	}
	runCfg := loadgen.Config{
		BaseURL:      bases[0],
		BaseURLs:     bases,
		Workers:      *workers,
		QPS:          *qps,
		Requests:     *requests,
		Duration:     *duration,
		Mix:          mix,
		K:            *k,
		BatchSize:    *batch,
		WarmupPasses: *warmup,
		Seed:         *seed,
		RecordWrites: *journal != "",
	}

	if *sweep != "" {
		runSweep(runCfg, *sweep, *kneeF, *out, *date, base, *selfserve, *index, idxCfg.Shards)
		return
	}

	res, err := loadgen.Run(runCfg)
	if err != nil {
		fatal(err)
	}

	if *journal != "" {
		if err := writeJournal(*journal, res.Writes); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "loadgen: journaled %d write events to %s\n", len(res.Writes), *journal)
	}

	fmt.Fprintf(os.Stderr, "loadgen: %d requests in %.2fs (%.0f req/s, %s, %d workers)\n",
		res.Overall.Requests, res.DurationSeconds, res.Overall.QPS, errorSummary(res.Overall), res.Workers)
	for _, o := range res.PerOp {
		fmt.Fprintf(os.Stderr, "  %-17s %8d reqs  %8.0f req/s  p50 %6.3fms  p95 %6.3fms  p99 %6.3fms  p99.9 %6.3fms  max %6.1fms\n",
			o.Op, o.Requests, o.QPS, o.P50Ms, o.P95Ms, o.P99Ms, o.P999Ms, o.MaxMs)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	snap := res.Snapshot(*date)
	snap.Server = serverMeta(base, *selfserve, *index, idxCfg.Shards)
	if err := enc.Encode(snap); err != nil {
		fatal(err)
	}
}

// errorSummary renders an OpResult's failure tallies, splitting out
// deliberate load-shedding (429), deadline expiries (503) and
// transport failures when any occurred.
func errorSummary(o loadgen.OpResult) string {
	if o.Errors == 0 {
		return "0 errors"
	}
	return fmt.Sprintf("%d errors [%d shed, %d expired, %d net]", o.Errors, o.Shed, o.Expired, o.NetErrors)
}

// runSweep steps the offered rate up the ladder, prints one line per
// rung plus the knee estimate, and writes the SWEEP JSON snapshot.
func runSweep(cfg loadgen.Config, ladderSpec string, factor float64, out, date, base string, selfserve bool, kind string, shards int) {
	ladder, err := loadgen.ParseLadder(ladderSpec)
	if err != nil {
		fatal(err)
	}
	res, err := loadgen.RunSweep(cfg, ladder, factor)
	if err != nil {
		fatal(err)
	}
	for _, s := range res.Steps {
		fmt.Fprintf(os.Stderr, "sweep: offered %8.0f req/s -> achieved %8.0f req/s  p50 %7.3fms  p99 %7.3fms  max %7.1fms  %s\n",
			s.OfferedQPS, s.Overall.QPS, s.Overall.P50Ms, s.Overall.P99Ms, s.Overall.MaxMs, errorSummary(s.Overall))
	}
	switch {
	case res.Knee.Index < 0:
		fmt.Fprintf(os.Stderr, "sweep: no knee found — the server absorbed every offered rate (baseline p99 %.3fms, factor %g)\n",
			res.Knee.BaselineP99Ms, res.KneeFactor)
	default:
		fmt.Fprintf(os.Stderr, "sweep: knee at %g offered req/s (step %d, by %s; baseline p99 %.3fms, factor %g)\n",
			res.Knee.OfferedQPS, res.Knee.Index, res.Knee.Reason, res.Knee.BaselineP99Ms, res.KneeFactor)
	}

	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	stepDur := cfg.Duration
	if cfg.Requests > 0 {
		stepDur = 0
	}
	snap := res.Snapshot(date, stepDur)
	snap.Server = serverMeta(base, selfserve, kind, shards)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		fatal(err)
	}
}

// serverMeta probes the target's /healthz so the snapshot records the
// serving shape (corpus size, shard count) that produced its numbers.
// The index kind is only knowable in selfserve mode, where we chose it.
func serverMeta(base string, selfserve bool, kind string, shards int) *loadgen.ServerMeta {
	meta := &loadgen.ServerMeta{}
	if selfserve {
		meta.Index = kind
		meta.Shards = shards
	}
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		return meta
	}
	defer resp.Body.Close()
	var h struct {
		Vectors int `json:"vectors"`
		Dim     int `json:"dim"`
		Shards  int `json:"shards"`
	}
	if json.NewDecoder(resp.Body).Decode(&h) == nil {
		meta.Vectors, meta.Dim = h.Vectors, h.Dim
		if h.Shards > 0 {
			meta.Shards = h.Shards
		}
	}
	return meta
}

// startSelfServe builds a deterministic random model, serves it on a
// loopback port behind the requested index, and returns the base URL
// plus a shutdown function.
func startSelfServe(vectors, dim int, seed uint64, cacheSize int, idx vecstore.Config) (string, func(), error) {
	m := word2vec.NewModel(vectors, dim)
	rng := xrand.New(seed)
	for i := range m.Vectors {
		m.Vectors[i] = float32(rng.Float64()*2 - 1)
	}
	srv, err := server.NewFromModel(server.Config{
		Addr:      "127.0.0.1:0",
		CacheSize: cacheSize,
		Index:     idx,
	}, m, nil)
	if err != nil {
		return "", nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan net.Addr, 1)
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe(ctx, ready) }()
	select {
	case a := <-ready:
		stop := func() {
			cancel()
			<-errc
		}
		return "http://" + a.String(), stop, nil
	case err := <-errc:
		cancel()
		return "", nil, err
	}
}

// writeJournal writes the run's write events as JSON Lines: one
// self-contained event per line, so a harness reading a journal cut
// short by a crash still parses every complete line.
func writeJournal(path string, events []loadgen.WriteEvent) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	for _, ev := range events {
		if err := enc.Encode(ev); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loadgen:", err)
	os.Exit(1)
}
