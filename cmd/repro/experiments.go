package main

import (
	"fmt"
	"io"
	"time"

	"v2v"
)

// benchmarkGraph builds the paper's synthetic benchmark at the given
// alpha under the experiment scale.
func (p params) benchmarkGraph(alpha float64) (*v2v.Graph, []int) {
	return v2v.CommunityBenchmark(v2v.BenchmarkConfig{
		NumCommunities: p.communities,
		CommunitySize:  p.communitySize,
		Alpha:          alpha,
		InterEdges:     p.interEdges,
		Seed:           p.seed,
	})
}

// embedOptions is the shared V2V configuration.
func (p params) embedOptions(dim int) v2v.Options {
	o := v2v.DefaultOptions(dim)
	o.WalksPerVertex = p.walksPerVertex
	o.WalkLength = p.walkLength
	o.Epochs = p.epochs
	o.Streaming = p.streaming
	o.Seed = p.seed + uint64(dim)*7919
	return o
}

// ---- Figure 3: force-directed drawings of the benchmark graphs -----

func runFig3(p params, out string) error {
	for _, alpha := range []float64{0.1, 0.5, 1.0} {
		g, truth := p.benchmarkGraph(alpha)
		x, y := v2v.ForceLayout(g, v2v.LayoutConfig{Iterations: 150, Seed: p.seed})
		plot := &v2v.GraphPlot{
			Title:    fmt.Sprintf("Fig 3: synthetic graph, alpha=%.1f (%d vertices, %d edges)", alpha, g.NumVertices(), g.NumEdges()),
			X:        x,
			Y:        y,
			Category: truth,
		}
		for _, e := range g.Edges() {
			plot.Edges = append(plot.Edges, [2]int{e.From, e.To})
		}
		name := fmt.Sprintf("fig3_alpha%.1f.svg", alpha)
		if err := writeFile(out, name, plot.WriteSVG); err != nil {
			return err
		}
		fmt.Printf("  alpha=%.1f: %d vertices, %d edges -> %s\n", alpha, g.NumVertices(), g.NumEdges(), name)
	}
	return nil
}

// ---- Figure 4: PCA scatter of the embedding at alpha=0.1 -----------

func runFig4(p params, out string) error {
	alpha := 0.1
	g, truth := p.benchmarkGraph(alpha)
	emb, err := v2v.Embed(g, p.embedOptions(50))
	if err != nil {
		return err
	}
	proj, pca, err := emb.ProjectPCA(2, p.seed)
	if err != nil {
		return err
	}
	xs := make([]float64, len(proj))
	ys := make([]float64, len(proj))
	for i, pt := range proj {
		xs[i], ys[i] = pt[0], pt[1]
	}
	plot := &v2v.ScatterPlot{
		Title:    fmt.Sprintf("Fig 4: PCA of V2V embedding (dim=50, alpha=%.1f)", alpha),
		X:        xs,
		Y:        ys,
		Category: truth,
	}
	if err := writeFile(out, "fig4_pca.svg", plot.WriteSVG); err != nil {
		return err
	}
	fmt.Printf("  PCA variances: PC1=%.4f PC2=%.4f -> fig4_pca.svg\n", pca.Variances[0], pca.Variances[1])
	return nil
}

// sharedWalkEmbedder prepares one walk set generated under
// p.embedOptions(seedDim) and returns an embed function that trains
// any dimension on that same set — the paper's dimension-sweep
// protocol. Materialized mode generates the corpus once and reuses
// it; with -streaming a stream re-derives identical walks per model
// so the set is never buffered.
func (p params) sharedWalkEmbedder(g *v2v.Graph, seedDim int) (func(dim int) (*v2v.Embedding, error), error) {
	if p.streaming {
		stream, err := v2v.StreamWalks(g, p.embedOptions(seedDim))
		if err != nil {
			return nil, err
		}
		return func(dim int) (*v2v.Embedding, error) {
			return v2v.EmbedWalkStream(g, stream, p.embedOptions(dim))
		}, nil
	}
	corpus, err := v2v.GenerateWalks(g, p.embedOptions(seedDim))
	if err != nil {
		return nil, err
	}
	return func(dim int) (*v2v.Embedding, error) {
		return v2v.EmbedWalks(g, corpus, p.embedOptions(dim))
	}, nil
}

// ---- Figures 5 and 6: precision/recall vs alpha per dimension ------

// sweepPrecisionRecall runs the alpha x dims grid once and returns
// precision[dimIdx][alphaIdx] and recall likewise.
func sweepPrecisionRecall(p params, dims []int) ([][]float64, [][]float64, error) {
	precision := make([][]float64, len(dims))
	recall := make([][]float64, len(dims))
	for i := range dims {
		precision[i] = make([]float64, len(p.alphas))
		recall[i] = make([]float64, len(p.alphas))
	}
	for ai, alpha := range p.alphas {
		g, truth := p.benchmarkGraph(alpha)
		// All dimension settings train on the same walk set, as the
		// paper specifies for its dimension sweeps.
		embed, err := p.sharedWalkEmbedder(g, dims[0])
		if err != nil {
			return nil, nil, err
		}
		for di, dim := range dims {
			emb, err := embed(dim)
			if err != nil {
				return nil, nil, err
			}
			res, err := emb.DetectCommunities(v2v.CommunityConfig{
				K: p.communities, Restarts: 100, Seed: p.seed,
			})
			if err != nil {
				return nil, nil, err
			}
			pr, rc, err := v2v.EvaluateCommunities(truth, res.Partition)
			if err != nil {
				return nil, nil, err
			}
			precision[di][ai] = pr
			recall[di][ai] = rc
		}
	}
	return precision, recall, nil
}

func writeSweepChart(out, name, title, ylabel string, p params, dims []int, vals [][]float64) error {
	chart := &v2v.LineChart{
		Title:  title,
		XLabel: "alpha",
		YLabel: ylabel,
		YMin:   0.5,
		YMax:   1.0,
	}
	for di, dim := range dims {
		chart.Series = append(chart.Series, v2v.ChartSeries{
			Name: fmt.Sprintf("dimension %d", dim),
			X:    p.alphas,
			Y:    vals[di],
		})
	}
	return writeFile(out, name, chart.WriteSVG)
}

func writeSweepTable(f io.Writer, p params, dims []int, vals [][]float64) error {
	fmt.Fprintf(f, "alpha")
	for _, d := range dims {
		fmt.Fprintf(f, "\tdim%d", d)
	}
	fmt.Fprintln(f)
	for ai, alpha := range p.alphas {
		fmt.Fprintf(f, "%.1f", alpha)
		for di := range dims {
			fmt.Fprintf(f, "\t%.4f", vals[di][ai])
		}
		fmt.Fprintln(f)
	}
	return nil
}

func runFig5(p params, out string) error {
	precision, _, err := sweepPrecisionRecall(p, p.fig56Dims)
	if err != nil {
		return err
	}
	if err := writeSweepChart(out, "fig5_precision.svg",
		"Fig 5: precision of V2V community detection vs alpha", "precision",
		p, p.fig56Dims, precision); err != nil {
		return err
	}
	if err := writeFile(out, "fig5_precision.txt", func(f io.Writer) error {
		return writeSweepTable(f, p, p.fig56Dims, precision)
	}); err != nil {
		return err
	}
	for di, dim := range p.fig56Dims {
		fmt.Printf("  dim %4d: precision %.3f (alpha=%.1f) -> %.3f (alpha=%.1f)\n",
			dim, precision[di][0], p.alphas[0], precision[di][len(p.alphas)-1], p.alphas[len(p.alphas)-1])
	}
	return nil
}

func runFig6(p params, out string) error {
	_, recall, err := sweepPrecisionRecall(p, p.fig56Dims)
	if err != nil {
		return err
	}
	if err := writeSweepChart(out, "fig6_recall.svg",
		"Fig 6: recall of V2V community detection vs alpha", "recall",
		p, p.fig56Dims, recall); err != nil {
		return err
	}
	if err := writeFile(out, "fig6_recall.txt", func(f io.Writer) error {
		return writeSweepTable(f, p, p.fig56Dims, recall)
	}); err != nil {
		return err
	}
	for di, dim := range p.fig56Dims {
		fmt.Printf("  dim %4d: recall %.3f (alpha=%.1f) -> %.3f (alpha=%.1f)\n",
			dim, recall[di][0], p.alphas[0], recall[di][len(p.alphas)-1], p.alphas[len(p.alphas)-1])
	}
	return nil
}

// ---- Figure 7: training time and accuracy vs alpha (convergence) ---

func runFig7(p params, out string) error {
	type row struct {
		alpha     float64
		trainTime time.Duration
		epochs    int
		precision float64
		recall    float64
	}
	var rows []row
	for _, alpha := range p.alphas {
		g, truth := p.benchmarkGraph(alpha)
		o := p.embedOptions(p.fig7Dim)
		o.Epochs = p.maxEpochs
		o.ConvergenceTol = p.convergenceTol
		emb, err := v2v.Embed(g, o)
		if err != nil {
			return err
		}
		res, err := emb.DetectCommunities(v2v.CommunityConfig{
			K: p.communities, Restarts: 100, Seed: p.seed,
		})
		if err != nil {
			return err
		}
		pr, rc, err := v2v.EvaluateCommunities(truth, res.Partition)
		if err != nil {
			return err
		}
		rows = append(rows, row{alpha, emb.TrainTime, emb.Stats.Epochs, pr, rc})
		fmt.Printf("  alpha=%.1f: train=%v (%d epochs) precision=%.3f recall=%.3f\n",
			alpha, emb.TrainTime.Round(time.Millisecond), emb.Stats.Epochs, pr, rc)
	}
	if err := writeFile(out, "fig7_training_time.txt", func(f io.Writer) error {
		fmt.Fprintln(f, "alpha\ttrain_seconds\tepochs\tprecision\trecall")
		for _, r := range rows {
			fmt.Fprintf(f, "%.1f\t%.4f\t%d\t%.4f\t%.4f\n",
				r.alpha, r.trainTime.Seconds(), r.epochs, r.precision, r.recall)
		}
		return nil
	}); err != nil {
		return err
	}
	chart := &v2v.LineChart{
		Title:  fmt.Sprintf("Fig 7: training time (convergence-stopped) vs alpha, dim=%d", p.fig7Dim),
		XLabel: "alpha",
		YLabel: "training time (s)",
	}
	var ts, xs []float64
	for _, r := range rows {
		xs = append(xs, r.alpha)
		ts = append(ts, r.trainTime.Seconds())
	}
	chart.Series = append(chart.Series, v2v.ChartSeries{Name: "training time", X: xs, Y: ts})
	return writeFile(out, "fig7_training_time.svg", chart.WriteSVG)
}

// ---- Table I: V2V vs CNM vs Girvan-Newman ---------------------------

func runTable1(p params, out string) error {
	type row struct {
		alpha                  float64
		v2vP, v2vR             float64
		trainTime, clusterTime time.Duration
		cnmP, cnmR             float64
		cnmTime                time.Duration
		gnP, gnR               float64
		gnTime                 time.Duration
	}
	var rows []row
	for _, alpha := range p.alphas {
		g, truth := p.benchmarkGraph(alpha)

		emb, err := v2v.Embed(g, p.embedOptions(p.table1Dim))
		if err != nil {
			return err
		}
		res, err := emb.DetectCommunities(v2v.CommunityConfig{
			K: p.communities, Restarts: 100, Seed: p.seed,
		})
		if err != nil {
			return err
		}
		v2vP, v2vR, err := v2v.EvaluateCommunities(truth, res.Partition)
		if err != nil {
			return err
		}

		cnmStart := time.Now()
		cnm, err := v2v.CNM(g, v2v.CNMConfig{TargetK: p.communities})
		if err != nil {
			return err
		}
		cnmTime := time.Since(cnmStart)
		cnmP, cnmR, _ := v2v.EvaluateCommunities(truth, cnm.Partition)

		gnStart := time.Now()
		gn, err := v2v.GirvanNewman(g, v2v.GNConfig{TargetK: p.communities})
		if err != nil {
			return err
		}
		gnTime := time.Since(gnStart)
		gnP, gnR, _ := v2v.EvaluateCommunities(truth, gn.Partition)

		r := row{alpha, v2vP, v2vR, emb.TrainTime + emb.WalkTime, res.ClusterTime,
			cnmP, cnmR, cnmTime, gnP, gnR, gnTime}
		rows = append(rows, r)
		fmt.Printf("  alpha=%.1f  V2V %.3f/%.3f train=%v cluster=%v | CNM %.3f/%.3f %v | GN %.3f/%.3f %v\n",
			alpha, v2vP, v2vR, r.trainTime.Round(time.Millisecond), r.clusterTime.Round(time.Microsecond),
			cnmP, cnmR, cnmTime.Round(time.Millisecond), gnP, gnR, gnTime.Round(time.Millisecond))
	}
	return writeFile(out, "table1.txt", func(f io.Writer) error {
		fmt.Fprintln(f, "# Community detection: V2V (k-means on embeddings) vs CNM vs Girvan-Newman")
		fmt.Fprintf(f, "# graph: %d communities x %d vertices, %d inter-community edges; V2V dim=%d\n",
			p.communities, p.communitySize, p.interEdges, p.table1Dim)
		fmt.Fprintln(f, "alpha\tv2v_precision\tv2v_recall\tv2v_train_s\tv2v_cluster_s\tcnm_precision\tcnm_recall\tcnm_s\tgn_precision\tgn_recall\tgn_s")
		var avg row
		for _, r := range rows {
			fmt.Fprintf(f, "%.1f\t%.3f\t%.3f\t%.4f\t%.6f\t%.3f\t%.3f\t%.4f\t%.3f\t%.3f\t%.4f\n",
				r.alpha, r.v2vP, r.v2vR, r.trainTime.Seconds(), r.clusterTime.Seconds(),
				r.cnmP, r.cnmR, r.cnmTime.Seconds(), r.gnP, r.gnR, r.gnTime.Seconds())
			avg.v2vP += r.v2vP
			avg.v2vR += r.v2vR
			avg.trainTime += r.trainTime
			avg.clusterTime += r.clusterTime
			avg.cnmP += r.cnmP
			avg.cnmR += r.cnmR
			avg.cnmTime += r.cnmTime
			avg.gnP += r.gnP
			avg.gnR += r.gnR
			avg.gnTime += r.gnTime
		}
		n := float64(len(rows))
		fmt.Fprintf(f, "avg\t%.3f\t%.3f\t%.4f\t%.6f\t%.3f\t%.3f\t%.4f\t%.3f\t%.3f\t%.4f\n",
			avg.v2vP/n, avg.v2vR/n, avg.trainTime.Seconds()/n, avg.clusterTime.Seconds()/n,
			avg.cnmP/n, avg.cnmR/n, avg.cnmTime.Seconds()/n, avg.gnP/n, avg.gnR/n, avg.gnTime.Seconds()/n)
		return nil
	})
}

// ---- Figure 8: OpenFlights PCA visualization ------------------------

func (p params) openFlights() (*v2v.OpenFlightsDataset, error) {
	cfg := v2v.DefaultOpenFlightsConfig(p.seed)
	cfg.NumAirports = p.airports
	cfg.NumRegions = p.regions
	return v2v.GenerateOpenFlights(cfg)
}

func (p params) embedOpenFlights(ds *v2v.OpenFlightsDataset, dim int) (*v2v.Embedding, error) {
	o := p.embedOptions(dim)
	return v2v.Embed(ds.Graph, o)
}

func runFig8(p params, out string) error {
	ds, err := p.openFlights()
	if err != nil {
		return err
	}
	fmt.Printf("  route network: %d airports, %d routes, %d countries, %d regions\n",
		ds.Graph.NumVertices(), ds.Graph.NumEdges(), ds.NumCountries, ds.NumRegions)
	emb, err := p.embedOpenFlights(ds, 50)
	if err != nil {
		return err
	}
	proj, _, err := emb.ProjectPCA(3, p.seed)
	if err != nil {
		return err
	}
	xs := make([]float64, len(proj))
	ys := make([]float64, len(proj))
	for i, pt := range proj {
		xs[i], ys[i] = pt[0], pt[1]
	}
	plot := &v2v.ScatterPlot{
		Title:    "Fig 8a: PCA (2D) of airport embeddings, colored by continent",
		X:        xs,
		Y:        ys,
		Category: ds.Continent,
		Labels:   ds.RegionNames,
	}
	if err := writeFile(out, "fig8_openflights_pca2d.svg", plot.WriteSVG); err != nil {
		return err
	}
	// 3-D coordinates as data (the paper's Fig 8b); SVG is 2-D, so we
	// emit the coordinates for external plotting and a 2D projection
	// of components 1 and 3 as a second view.
	if err := writeFile(out, "fig8_openflights_pca3d.txt", func(f io.Writer) error {
		fmt.Fprintln(f, "pc1\tpc2\tpc3\tcontinent\tcountry\tairport")
		for i, pt := range proj {
			fmt.Fprintf(f, "%.5f\t%.5f\t%.5f\t%s\t%s\t%s\n",
				pt[0], pt[1], pt[2], ds.RegionNames[ds.Continent[i]],
				ds.CountryNames[ds.Country[i]], ds.Graph.Name(i))
		}
		return nil
	}); err != nil {
		return err
	}
	zs := make([]float64, len(proj))
	for i, pt := range proj {
		zs[i] = pt[2]
	}
	plot13 := &v2v.ScatterPlot{
		Title:    "Fig 8b (view): PCA components 1 and 3",
		X:        xs,
		Y:        zs,
		Category: ds.Continent,
		Labels:   ds.RegionNames,
	}
	return writeFile(out, "fig8_openflights_pca13.svg", plot13.WriteSVG)
}

// ---- Figures 9 and 10: k-NN accuracy sweeps -------------------------

// predictionGrid computes accuracy[dimIdx][kIdx] for k = 1..10 by
// 10-fold cross-validated country prediction.
func predictionGrid(p params, dims []int) ([][]float64, *v2v.OpenFlightsDataset, error) {
	ds, err := p.openFlights()
	if err != nil {
		return nil, nil, err
	}
	// All dimension settings train on the same walk set, following the
	// paper's Figure 9 protocol ("we trained the V2V, with different
	// settings of dimensions, in the same set of random walk paths" —
	// the stated cause of the overfitting shape).
	embed, err := p.sharedWalkEmbedder(ds.Graph, dims[0])
	if err != nil {
		return nil, nil, err
	}
	acc := make([][]float64, len(dims))
	for di, dim := range dims {
		emb, err := embed(dim)
		if err != nil {
			return nil, nil, err
		}
		acc[di] = make([]float64, 10)
		for k := 1; k <= 10; k++ {
			a, err := emb.CrossValidateLabels(ds.Country, k, 10, p.seed)
			if err != nil {
				return nil, nil, err
			}
			acc[di][k-1] = a
		}
	}
	return acc, ds, nil
}

func runFig9(p params, out string) error {
	acc, ds, err := predictionGrid(p, p.fig9Dims)
	if err != nil {
		return err
	}
	fmt.Printf("  predicting %d country labels over %d airports\n", ds.NumCountries, ds.Graph.NumVertices())
	chart := &v2v.LineChart{
		Title:  "Fig 9: country prediction accuracy vs embedding dimension",
		XLabel: "dimensions",
		YLabel: "accuracy",
	}
	dimsX := make([]float64, len(p.fig9Dims))
	for i, d := range p.fig9Dims {
		dimsX[i] = float64(d)
	}
	for k := 1; k <= 10; k++ {
		ys := make([]float64, len(p.fig9Dims))
		for di := range p.fig9Dims {
			ys[di] = acc[di][k-1]
		}
		chart.Series = append(chart.Series, v2v.ChartSeries{
			Name: fmt.Sprintf("k = %d", k), X: dimsX, Y: ys,
		})
	}
	if err := writeFile(out, "fig9_accuracy_vs_dim.svg", chart.WriteSVG); err != nil {
		return err
	}
	if err := writeFile(out, "fig9_accuracy_vs_dim.txt", func(f io.Writer) error {
		fmt.Fprint(f, "dim")
		for k := 1; k <= 10; k++ {
			fmt.Fprintf(f, "\tk%d", k)
		}
		fmt.Fprintln(f)
		for di, d := range p.fig9Dims {
			fmt.Fprintf(f, "%d", d)
			for k := 1; k <= 10; k++ {
				fmt.Fprintf(f, "\t%.4f", acc[di][k-1])
			}
			fmt.Fprintln(f)
		}
		return nil
	}); err != nil {
		return err
	}
	for di, d := range p.fig9Dims {
		fmt.Printf("  dim %4d: k=3 accuracy %.3f\n", d, acc[di][2])
	}
	return nil
}

func runFig10(p params, out string) error {
	acc, _, err := predictionGrid(p, p.fig10Dims)
	if err != nil {
		return err
	}
	chart := &v2v.LineChart{
		Title:  "Fig 10: country prediction accuracy vs k (neighbours voting)",
		XLabel: "k",
		YLabel: "accuracy",
	}
	ks := make([]float64, 10)
	for k := range ks {
		ks[k] = float64(k + 1)
	}
	for di, d := range p.fig10Dims {
		chart.Series = append(chart.Series, v2v.ChartSeries{
			Name: fmt.Sprintf("dimension %d", d), X: ks, Y: acc[di],
		})
	}
	if err := writeFile(out, "fig10_accuracy_vs_k.svg", chart.WriteSVG); err != nil {
		return err
	}
	return writeFile(out, "fig10_accuracy_vs_k.txt", func(f io.Writer) error {
		fmt.Fprint(f, "k")
		for _, d := range p.fig10Dims {
			fmt.Fprintf(f, "\tdim%d", d)
		}
		fmt.Fprintln(f)
		for k := 0; k < 10; k++ {
			fmt.Fprintf(f, "%d", k+1)
			for di := range p.fig10Dims {
				fmt.Fprintf(f, "\t%.4f", acc[di][k])
			}
			fmt.Fprintln(f)
		}
		return nil
	})
}
