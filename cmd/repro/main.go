// Command repro regenerates every table and figure of the paper's
// evaluation (Table I, Figures 3-10) from the reproduction library,
// writing text tables and SVG charts into an output directory.
//
// Usage:
//
//	repro [-exp all|table1|fig3|fig4|fig5|fig6|fig7|fig8|fig9|fig10]
//	      [-scale small|medium|paper] [-out results] [-streaming] [-seed N]
//
// Scale controls graph sizes and walk budgets: "small" finishes in
// well under a minute, "medium" (default) in a few minutes, "paper"
// approaches the paper's sizes (1000-vertex benchmark graphs, a
// 10k-airport route network) and takes correspondingly longer. With
// -streaming every embedding runs through the fused walk→train
// pipeline (docs/STREAMING.md); results are identical by construction,
// memory stays bounded at paper scale. The paper's absolute runtimes
// are not reproducible (different hardware and a different word2vec
// implementation); the *shapes* of every table and figure are. See
// docs/EXPERIMENTS.md for the section-by-section command mapping.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment to run: all, table1, fig3..fig10")
		scale     = flag.String("scale", "medium", "small, medium or paper")
		out       = flag.String("out", "results", "output directory")
		streaming = flag.Bool("streaming", false, "run every embedding through the fused streaming pipeline (docs/STREAMING.md)")
		seed      = flag.Uint64("seed", 1, "master random seed")
	)
	flag.Parse()

	p, err := paramsFor(*scale, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(2)
	}
	p.streaming = *streaming
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}

	experiments := map[string]func(params, string) error{
		"table1": runTable1,
		"fig3":   runFig3,
		"fig4":   runFig4,
		"fig5":   runFig5,
		"fig6":   runFig6,
		"fig7":   runFig7,
		"fig8":   runFig8,
		"fig9":   runFig9,
		"fig10":  runFig10,
	}
	order := []string{"fig3", "fig4", "fig5", "fig6", "fig7", "table1", "fig8", "fig9", "fig10"}

	var toRun []string
	if *exp == "all" {
		toRun = order
	} else {
		for _, name := range strings.Split(*exp, ",") {
			name = strings.TrimSpace(name)
			if _, ok := experiments[name]; !ok {
				fmt.Fprintf(os.Stderr, "repro: unknown experiment %q\n", name)
				os.Exit(2)
			}
			toRun = append(toRun, name)
		}
	}

	for _, name := range toRun {
		fmt.Printf("== %s (scale=%s) ==\n", name, *scale)
		if err := experiments[name](p, *out); err != nil {
			fmt.Fprintf(os.Stderr, "repro: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
	fmt.Printf("done; outputs in %s\n", *out)
}

// params bundles every scale-dependent knob.
type params struct {
	seed      uint64
	streaming bool // fused walk→train pipeline for every embedding

	// Synthetic benchmark (paper: 10 x 100, 200 inter edges).
	communities   int
	communitySize int
	interEdges    int

	// Walk budget (paper: t = l = 1000).
	walksPerVertex int
	walkLength     int
	epochs         int

	// Dimension sweeps.
	fig56Dims []int // paper: 20, 50, 100, 250, 600
	fig7Dim   int   // paper: 600
	table1Dim int   // paper: 10
	fig9Dims  []int // paper: 10..1000
	fig10Dims []int

	// Convergence training (Fig 7).
	convergenceTol float64
	maxEpochs      int

	// OpenFlights-like dataset.
	airports int
	regions  int

	// Alpha sweep (paper: 0.1 .. 1.0).
	alphas []float64
}

func paramsFor(scale string, seed uint64) (params, error) {
	full := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	switch scale {
	case "small":
		return params{
			seed:           seed,
			communities:    10,
			communitySize:  40,
			interEdges:     40,
			walksPerVertex: 6,
			walkLength:     40,
			epochs:         3,
			fig56Dims:      []int{10, 20, 50},
			fig7Dim:        50,
			table1Dim:      10,
			fig9Dims:       []int{5, 10, 20, 40, 80},
			fig10Dims:      []int{10, 20, 50},
			convergenceTol: 0.02,
			maxEpochs:      30,
			airports:       500,
			regions:        6,
			alphas:         []float64{0.1, 0.4, 0.7, 1.0},
		}, nil
	case "medium":
		return params{
			seed:           seed,
			communities:    10,
			communitySize:  50,
			interEdges:     100,
			walksPerVertex: 8,
			walkLength:     60,
			epochs:         3,
			fig56Dims:      []int{20, 50, 100},
			fig7Dim:        100,
			table1Dim:      10,
			fig9Dims:       []int{5, 10, 20, 40, 70, 100, 200},
			fig10Dims:      []int{10, 30, 50, 100},
			convergenceTol: 0.02,
			maxEpochs:      40,
			airports:       2000,
			regions:        8,
			alphas:         full,
		}, nil
	case "paper":
		return params{
			seed:           seed,
			communities:    10,
			communitySize:  100,
			interEdges:     200,
			walksPerVertex: 50,
			walkLength:     200,
			epochs:         3,
			fig56Dims:      []int{20, 50, 100, 250, 600},
			fig7Dim:        600,
			table1Dim:      10,
			fig9Dims:       []int{10, 20, 30, 40, 50, 70, 100, 200, 500, 1000},
			fig10Dims:      []int{10, 30, 50, 70, 100, 300, 1000},
			convergenceTol: 0.02,
			maxEpochs:      60,
			airports:       10000,
			regions:        10,
			alphas:         full,
		}, nil
	default:
		return params{}, fmt.Errorf("unknown scale %q", scale)
	}
}

// writeFile writes data to dir/name.
func writeFile(dir, name string, write func(io.Writer) error) error {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
