// Command visualize renders a graph or an embedding as SVG.
//
// Two modes:
//
//	visualize -graph graph.txt -out drawing.svg          force layout
//	visualize -vectors vecs.txt -out scatter.svg         PCA scatter
//	visualize -vectors vecs.txt -tsne -out scatter.svg   t-SNE scatter
//
// An optional -labels file (one label per line, vertex order) colours
// the points by category.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"v2v"
)

func main() {
	var (
		graphF  = flag.String("graph", "", "edge list to lay out with ForceAtlas2")
		vecF    = flag.String("vectors", "", "word2vec text file to project")
		labelsF = flag.String("labels", "", "category labels, one per line (optional)")
		out     = flag.String("out", "", "output SVG (required)")
		useTSNE = flag.Bool("tsne", false, "project with t-SNE instead of PCA")
		iters   = flag.Int("iters", 200, "layout / t-SNE iterations")
		title   = flag.String("title", "", "plot title")
		seed    = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()
	if *out == "" || (*graphF == "") == (*vecF == "") {
		fmt.Fprintln(os.Stderr, "visualize: need -out and exactly one of -graph / -vectors")
		flag.Usage()
		os.Exit(2)
	}

	var labels []int
	var labelNames []string
	if *labelsF != "" {
		var err error
		labels, labelNames, err = readLabels(*labelsF)
		if err != nil {
			fatal(err)
		}
	}

	outF, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer outF.Close()

	if *graphF != "" {
		f, err := os.Open(*graphF)
		if err != nil {
			fatal(err)
		}
		g, err := v2v.ReadEdgeList(f, v2v.EdgeListOptions{})
		f.Close()
		if err != nil {
			fatal(err)
		}
		x, y := v2v.ForceLayout(g, v2v.LayoutConfig{Iterations: *iters, Seed: *seed})
		plot := &v2v.GraphPlot{Title: *title, X: x, Y: y, Category: labels}
		for _, e := range g.Edges() {
			plot.Edges = append(plot.Edges, [2]int{e.From, e.To})
		}
		if err := plot.WriteSVG(outF); err != nil {
			fatal(err)
		}
		return
	}

	f, err := os.Open(*vecF)
	if err != nil {
		fatal(err)
	}
	model, _, err := v2v.LoadModel(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	rows := model.Rows()
	var pts [][]float64
	if *useTSNE {
		pts, err = v2v.TSNE(rows, v2v.TSNEConfig{Iterations: *iters, Seed: *seed})
		if err != nil {
			fatal(err)
		}
	} else {
		pca, err := v2v.PCAOf(rows, 2, *seed)
		if err != nil {
			fatal(err)
		}
		pts = pca.TransformAll(rows)
	}
	xs := make([]float64, len(pts))
	ys := make([]float64, len(pts))
	for i, p := range pts {
		xs[i], ys[i] = p[0], p[1]
	}
	plot := &v2v.ScatterPlot{Title: *title, X: xs, Y: ys, Category: labels, Labels: labelNames}
	if err := plot.WriteSVG(outF); err != nil {
		fatal(err)
	}
}

func readLabels(path string) ([]int, []string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	var labels []int
	index := map[string]int{}
	var names []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		id, ok := index[line]
		if !ok {
			id = len(names)
			index[line] = id
			names = append(names, line)
		}
		labels = append(labels, id)
	}
	return labels, names, sc.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "visualize:", err)
	os.Exit(1)
}
