// Command v2v trains vertex embeddings for a graph given as an edge
// list, writes them in the word2vec text format or the fast binary
// snapshot format, serves top-k similarity queries over saved
// embeddings, and runs a long-lived HTTP query server.
//
// Training usage:
//
//	v2v -in graph.txt [-out vectors.txt] [-format text|bin] [-dim 50]
//	    [-walks 10] [-length 80] [-window 5] [-epochs 3] [-directed]
//	    [-named]
//	    [-strategy uniform|edge-weighted|vertex-weighted|temporal|node2vec]
//	    [-objective cbow|skipgram] [-sampler ns|hs] [-streaming] [-seed 1]
//
// -format bin writes a versioned binary snapshot (magic header, token
// table, raw float32 matrix, CRC) that loads ~10x faster than the
// text format; every model-reading command auto-detects both formats.
//
// Query usage (one-shot, over a saved model):
//
//	v2v query -model vectors.txt [-k 10] [-index exact|ivf]
//	          [-nlists 0] [-nprobe 0] [-v] [vertex ...]
//
// Queries are vertex tokens, taken from the command line or — when
// none are given — one per line from stdin; each answer line is
// "query neighbor similarity". The IVF index trades exact results for
// speed; see docs/VECTORS.md for the nlists/nprobe knobs.
//
// Serve usage (the long-lived HTTP/JSON query server):
//
//	v2v serve -model vectors.snap [-addr 127.0.0.1:8080]
//	          [-index exact|ivf] [-nlists 0] [-nprobe 0] [-cache 4096]
//
// The server exposes /v1/neighbors, /v1/similarity, /v1/analogy,
// /v1/predict (plus /batch variants), /v1/vocab, /v1/reload (atomic
// hot model swap), /healthz and /stats, and shuts down gracefully on
// SIGTERM/SIGINT. See docs/SERVING.md for the API reference and
// cmd/loadgen for the load-generating client.
//
// The input format is one edge per line: "u v [weight [time]]"; lines
// starting with '#' are comments. With -named, u and v are arbitrary
// vertex names rather than integer indices.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"v2v"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "query":
			queryMain(os.Args[2:])
			return
		case "serve":
			serveMain(os.Args[2:])
			return
		}
	}
	trainMain()
}

func trainMain() {
	var (
		in        = flag.String("in", "", "input edge list (required; '-' for stdin)")
		out       = flag.String("out", "", "output vector file (default stdout)")
		dim       = flag.Int("dim", 50, "embedding dimensions")
		walks     = flag.Int("walks", 10, "random walks per vertex (paper default 1000)")
		length    = flag.Int("length", 80, "walk length (paper default 1000)")
		window    = flag.Int("window", 5, "context window n")
		epochs    = flag.Int("epochs", 3, "training epochs")
		directed  = flag.Bool("directed", false, "treat edges as directed")
		named     = flag.Bool("named", false, "vertex names instead of integer indices")
		strategy  = flag.String("strategy", "uniform", "walk strategy: uniform, edge-weighted, vertex-weighted, temporal, node2vec")
		window64  = flag.Int64("temporal-window", 0, "temporal strategy: max timestamp gap (0 = unbounded)")
		p         = flag.Float64("p", 1, "node2vec return parameter")
		q         = flag.Float64("q", 1, "node2vec in-out parameter")
		objective = flag.String("objective", "cbow", "cbow or skipgram")
		sampler   = flag.String("sampler", "ns", "ns (negative sampling) or hs (hierarchical softmax)")
		streaming = flag.Bool("streaming", false, "fused walk→train pipeline: regenerate walks on the fly instead of materializing the corpus (see docs/STREAMING.md)")
		format    = flag.String("format", "text", "output format: text (word2vec) or bin (binary snapshot, ~10x faster to load)")
		seed      = flag.Uint64("seed", 1, "random seed")
		verbose   = flag.Bool("v", false, "log progress to stderr")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *format != "text" && *format != "bin" {
		fatal(fmt.Errorf("unknown format %q (want text or bin)", *format))
	}

	var input *os.File
	if *in == "-" {
		input = os.Stdin
	} else {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		input = f
	}
	g, err := v2v.ReadEdgeList(input, v2v.EdgeListOptions{Directed: *directed, Named: *named})
	if err != nil {
		fatal(err)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())
	}

	opts := v2v.DefaultOptions(*dim)
	opts.WalksPerVertex = *walks
	opts.WalkLength = *length
	opts.Window = *window
	opts.Epochs = *epochs
	opts.TemporalWindow = *window64
	opts.ReturnParam = *p
	opts.InOutParam = *q
	opts.Streaming = *streaming
	opts.Seed = *seed
	switch *strategy {
	case "uniform":
		opts.Strategy = v2v.UniformWalk
	case "edge-weighted":
		opts.Strategy = v2v.EdgeWeightedWalk
	case "vertex-weighted":
		opts.Strategy = v2v.VertexWeightedWalk
	case "temporal":
		opts.Strategy = v2v.TemporalWalk
	case "node2vec":
		opts.Strategy = v2v.Node2VecWalk
	default:
		fatal(fmt.Errorf("unknown strategy %q", *strategy))
	}
	switch *objective {
	case "cbow":
		opts.Objective = v2v.CBOW
	case "skipgram":
		opts.Objective = v2v.SkipGram
	default:
		fatal(fmt.Errorf("unknown objective %q", *objective))
	}
	switch *sampler {
	case "ns":
		opts.Sampler = v2v.NegativeSampling
	case "hs":
		opts.Sampler = v2v.HierarchicalSoftmax
	default:
		fatal(fmt.Errorf("unknown sampler %q", *sampler))
	}

	start := time.Now()
	emb, err := v2v.Embed(g, opts)
	if err != nil {
		fatal(err)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "walks: %d tokens in %v; training: %v (%d epochs, final loss %.4f)\n",
			emb.Tokens, emb.WalkTime.Round(time.Millisecond),
			emb.TrainTime.Round(time.Millisecond), emb.Stats.Epochs, emb.Stats.FinalLoss)
		fmt.Fprintf(os.Stderr, "total: %v\n", time.Since(start).Round(time.Millisecond))
	}

	var output *os.File = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		output = f
	}
	if *format == "bin" {
		tokens := make([]string, g.NumVertices())
		for v := range tokens {
			tokens[v] = g.Name(v)
		}
		if err := v2v.SaveSnapshot(output, emb.Model, tokens); err != nil {
			fatal(err)
		}
		return
	}
	if err := emb.Model.Save(output, g.Name); err != nil {
		fatal(err)
	}
}

// serveMain runs the long-lived HTTP query server with graceful
// shutdown on SIGTERM/SIGINT.
func serveMain(args []string) {
	fs := flag.NewFlagSet("v2v serve", flag.ExitOnError)
	var (
		modelF = fs.String("model", "", "saved model (required; snapshot or text, auto-detected)")
		addr   = fs.String("addr", "127.0.0.1:8080", "listen address")
		kind   = fs.String("index", "exact", "index kind: exact or ivf")
		nlists = fs.Int("nlists", 0, "ivf: coarse cells (0 = sqrt(n))")
		nprobe = fs.Int("nprobe", 0, "ivf: cells scanned per query (0 = nlists/4)")
		seed   = fs.Uint64("seed", 1, "ivf quantizer seed")
		cache  = fs.Int("cache", 4096, "response cache entries (negative disables)")
		quiet  = fs.Bool("q", false, "suppress serving logs")
	)
	fs.Parse(args)
	if *modelF == "" {
		fs.Usage()
		os.Exit(2)
	}
	cfg := v2v.ServeConfig{
		Addr:      *addr,
		ModelPath: *modelF,
		CacheSize: *cache,
	}
	cfg.Index = v2v.IndexConfig{NLists: *nlists, NProbe: *nprobe, Seed: *seed}
	switch *kind {
	case "exact":
		cfg.Index.Kind = v2v.ExactIndex
	case "ivf":
		cfg.Index.Kind = v2v.IVFIndex
	default:
		fatal(fmt.Errorf("unknown index kind %q", *kind))
	}
	if !*quiet {
		cfg.Log = log.New(os.Stderr, "", log.LstdFlags)
	}

	// SIGTERM/SIGINT cancel the context; Serve then stops accepting,
	// drains in-flight requests and returns nil on a clean shutdown.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	if err := v2v.Serve(ctx, cfg); err != nil {
		fatal(err)
	}
}

// queryMain serves top-k neighbor queries over a saved model.
func queryMain(args []string) {
	fs := flag.NewFlagSet("v2v query", flag.ExitOnError)
	var (
		modelF  = fs.String("model", "", "saved vector file (required; output of v2v -out)")
		k       = fs.Int("k", 10, "neighbors per query")
		kind    = fs.String("index", "exact", "index kind: exact or ivf")
		nlists  = fs.Int("nlists", 0, "ivf: coarse cells (0 = sqrt(n))")
		nprobe  = fs.Int("nprobe", 0, "ivf: cells scanned per query (0 = nlists/4)")
		seed    = fs.Uint64("seed", 1, "ivf quantizer seed")
		verbose = fs.Bool("v", false, "log index build and query timing to stderr")
	)
	fs.Parse(args)
	if *modelF == "" {
		fs.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*modelF)
	if err != nil {
		fatal(err)
	}
	model, tokens, err := v2v.LoadModel(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	byToken := make(map[string]int, len(tokens))
	for i, tok := range tokens {
		byToken[tok] = i
	}

	cfg := v2v.IndexConfig{NLists: *nlists, NProbe: *nprobe, Seed: *seed}
	switch *kind {
	case "exact":
		cfg.Kind = v2v.ExactIndex
	case "ivf":
		cfg.Kind = v2v.IVFIndex
	default:
		fatal(fmt.Errorf("unknown index kind %q", *kind))
	}
	start := time.Now()
	idx, err := v2v.NewIndex(model, cfg)
	if err != nil {
		fatal(err)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "model: %d vectors, dim %d; %s index built in %v\n",
			model.Vocab, model.Dim, *kind, time.Since(start).Round(time.Millisecond))
	}

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	queries := fs.Args()
	answer := func(tok string) {
		w, ok := byToken[tok]
		if !ok {
			fmt.Fprintf(os.Stderr, "v2v query: unknown vertex %q\n", tok)
			return
		}
		qStart := time.Now()
		res := idx.SearchRow(w, *k)
		if *verbose {
			fmt.Fprintf(os.Stderr, "query %q: %v\n", tok, time.Since(qStart).Round(time.Microsecond))
		}
		for _, r := range res {
			fmt.Fprintf(out, "%s\t%s\t%.6f\n", tok, tokens[r.ID], r.Score)
		}
	}
	if len(queries) > 0 {
		for _, q := range queries {
			answer(q)
		}
		return
	}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		if tok := sc.Text(); tok != "" {
			answer(tok)
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "v2v:", err)
	os.Exit(1)
}
