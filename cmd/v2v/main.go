// Command v2v trains vertex embeddings for a graph given as an edge
// list, writes them in the word2vec text format or the fast binary
// snapshot format, serves top-k similarity queries over saved
// embeddings, and runs a long-lived HTTP query server.
//
// Training usage:
//
//	v2v -in graph.txt [-out vectors.txt] [-format text|bin] [-dim 50]
//	    [-walks 10] [-length 80] [-window 5] [-epochs 3] [-directed]
//	    [-named]
//	    [-strategy uniform|edge-weighted|vertex-weighted|temporal|node2vec]
//	    [-objective cbow|skipgram] [-sampler ns|hs] [-streaming] [-seed 1]
//
// -format bin writes a versioned binary snapshot (magic header, token
// table, raw float32 matrix, CRC) that loads ~10x faster than the
// text format; every model-reading command auto-detects both formats.
//
// Query usage (one-shot, over a saved model):
//
//	v2v query -model vectors.txt [-k 10] [-index exact|ivf|hnsw]
//	          [-nlists 0] [-nprobe 0] [-m 0] [-efc 0] [-efs 0]
//	          [-shards 0] [-v] [vertex ...]
//
// Queries are vertex tokens, taken from the command line or — when
// none are given — one per line from stdin; each answer line is
// "query neighbor similarity". The IVF and HNSW indexes trade exact
// results for speed; see docs/INDEXES.md for the selection guide and
// the nlists/nprobe and m/efc/efs knobs.
//
// Index usage (persist a prebuilt HNSW graph next to the model):
//
//	v2v index -model vectors.snap -out indexed.snap
//	          [-m 0] [-efc 0] [-efs 0] [-shards 0] [-seed 1]
//
// The output bundle is a model snapshot followed by the index graph
// (own magic/version/CRC section). `v2v serve -index hnsw` and
// `v2v query -index hnsw` bind the persisted graph instead of
// rebuilding it at startup. With -shards N the rows are partitioned
// across N independently-built HNSW shards (parallel build,
// scatter-gather queries) and the bundle carries one graph per shard;
// serve/query with the same -shards N rebind them.
//
// Serve usage (the long-lived HTTP/JSON query server):
//
//	v2v serve -model vectors.snap [-addr 127.0.0.1:8080]
//	          [-index exact|ivf|hnsw] [-nlists 0] [-nprobe 0]
//	          [-m 0] [-efc 0] [-efs 0] [-shards 0] [-cache 4096]
//	          [-readonly] [-compact-frac 0]
//	          [-wal DIR] [-wal-sync always|interval|never]
//	          [-wal-sync-interval 100ms] [-wal-segment-bytes N]
//	          [-wal-checkpoint-bytes N]
//	          [-read-concurrency N] [-read-queue N] [-deadline-ms D]
//	          [-write-concurrency N] [-write-queue N] [-write-deadline-ms D]
//	          [-retry-after 1] [-no-admission]
//	          [-router -shard-addrs URL,URL,... [-allow-partial]
//	           [-probe-ms 2000] [-remote-timeout-ms 5000]]
//	          [-shards N -shard-id I]
//
// Distributed serving runs the shard boundary over HTTP: -shard-id I
// serves one process's slice of an N-way partition (read-only public
// API plus the internal /shard/v1/* surface), and -router serves
// scatter-gather reads and hash-routed writes over the shard
// processes listed in -shard-addrs (entry i must be the -shard-id i
// process; membership is /healthz-probed every -probe-ms). Reads
// answer byte-for-byte identically to a single process running
// -shards N. With a shard down, reads answer 503 — or, with
// -allow-partial, skip it and mark the response "partial": true. See
// docs/SERVING.md ("Distributed serving").
//
// Admission control bounds in-flight requests per class (reads,
// writes, admin) with a small wait queue each; excess load is shed
// with 429 + Retry-After instead of queueing without bound, and
// requests that outlive their -deadline-ms answer 503. /healthz,
// /stats and /metrics are exempt so the server stays observable while
// overloaded. See docs/SERVING.md ("Overload and backpressure").
//
// With -wal, every acknowledged write is appended to a write-ahead
// log before it is applied, startup replays the log on top of the
// last checkpoint (crash recovery: no acknowledged write is lost),
// and checkpoints fold the log back into a snapshot. See
// docs/SERVING.md ("Durability").
//
// The server exposes /v1/neighbors, /v1/similarity, /v1/analogy,
// /v1/predict (plus /batch variants), /v1/vocab, /v1/reload (atomic
// hot model swap), /v1/upsert and /v1/delete (plus /batch variants —
// online writes, visible to queries immediately with no reload;
// disable with -readonly), /healthz and /stats, and shuts down
// gracefully on SIGTERM/SIGINT. Deletes tombstone rows; past the
// -compact-frac tombstone fraction the server compacts into a fresh
// generation. See docs/SERVING.md for the API reference and
// cmd/loadgen for the load-generating client.
//
// The input format is one edge per line: "u v [weight [time]]"; lines
// starting with '#' are comments. With -named, u and v are arbitrary
// vertex names rather than integer indices.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"v2v"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "query":
			queryMain(os.Args[2:])
			return
		case "serve":
			serveMain(os.Args[2:])
			return
		case "index":
			indexMain(os.Args[2:])
			return
		}
	}
	trainMain()
}

// indexSelection registers the shared index-selection flags on fs and
// returns a closure assembling the IndexConfig after parsing. Invalid
// kind/parameter combinations surface as descriptive errors from
// IndexConfig validation.
func indexSelection(fs *flag.FlagSet, defaultKind string) func() (v2v.IndexConfig, error) {
	var (
		kind   = fs.String("index", defaultKind, "index kind: exact, ivf or hnsw")
		nlists = fs.Int("nlists", 0, "ivf: coarse cells (0 = sqrt(n))")
		nprobe = fs.Int("nprobe", 0, "ivf: cells scanned per query (0 = nlists/4)")
		m      = fs.Int("m", 0, "hnsw: links per node per level (0 = 16)")
		efc    = fs.Int("efc", 0, "hnsw: construction beam width (0 = 200)")
		efs    = fs.Int("efs", 0, "hnsw: query beam width (0 = 128)")
		shards = fs.Int("shards", 0, "partition rows across N index shards: parallel builds and scatter-gather queries (0/1 = unsharded)")
		seed   = fs.Uint64("seed", 1, "index build seed")
	)
	return func() (v2v.IndexConfig, error) {
		cfg := v2v.IndexConfig{
			Seed:           *seed,
			NLists:         *nlists,
			NProbe:         *nprobe,
			M:              *m,
			EfConstruction: *efc,
			EfSearch:       *efs,
			Shards:         *shards,
		}
		switch *kind {
		case "exact":
			cfg.Kind = v2v.ExactIndex
		case "ivf":
			cfg.Kind = v2v.IVFIndex
		case "hnsw":
			cfg.Kind = v2v.HNSWIndex
		default:
			return cfg, fmt.Errorf("unknown index kind %q (want exact, ivf or hnsw)", *kind)
		}
		return cfg, cfg.Validate()
	}
}

func trainMain() {
	var (
		in        = flag.String("in", "", "input edge list (required; '-' for stdin)")
		out       = flag.String("out", "", "output vector file (default stdout)")
		dim       = flag.Int("dim", 50, "embedding dimensions")
		walks     = flag.Int("walks", 10, "random walks per vertex (paper default 1000)")
		length    = flag.Int("length", 80, "walk length (paper default 1000)")
		window    = flag.Int("window", 5, "context window n")
		epochs    = flag.Int("epochs", 3, "training epochs")
		directed  = flag.Bool("directed", false, "treat edges as directed")
		named     = flag.Bool("named", false, "vertex names instead of integer indices")
		strategy  = flag.String("strategy", "uniform", "walk strategy: uniform, edge-weighted, vertex-weighted, temporal, node2vec")
		window64  = flag.Int64("temporal-window", 0, "temporal strategy: max timestamp gap (0 = unbounded)")
		p         = flag.Float64("p", 1, "node2vec return parameter")
		q         = flag.Float64("q", 1, "node2vec in-out parameter")
		objective = flag.String("objective", "cbow", "cbow or skipgram")
		sampler   = flag.String("sampler", "ns", "ns (negative sampling) or hs (hierarchical softmax)")
		streaming = flag.Bool("streaming", false, "fused walk→train pipeline: regenerate walks on the fly instead of materializing the corpus (see docs/STREAMING.md)")
		format    = flag.String("format", "text", "output format: text (word2vec) or bin (binary snapshot, ~10x faster to load)")
		seed      = flag.Uint64("seed", 1, "random seed")
		verbose   = flag.Bool("v", false, "log progress to stderr")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *format != "text" && *format != "bin" {
		fatal(fmt.Errorf("unknown format %q (want text or bin)", *format))
	}

	var input *os.File
	if *in == "-" {
		input = os.Stdin
	} else {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		input = f
	}
	g, err := v2v.ReadEdgeList(input, v2v.EdgeListOptions{Directed: *directed, Named: *named})
	if err != nil {
		fatal(err)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())
	}

	opts := v2v.DefaultOptions(*dim)
	opts.WalksPerVertex = *walks
	opts.WalkLength = *length
	opts.Window = *window
	opts.Epochs = *epochs
	opts.TemporalWindow = *window64
	opts.ReturnParam = *p
	opts.InOutParam = *q
	opts.Streaming = *streaming
	opts.Seed = *seed
	switch *strategy {
	case "uniform":
		opts.Strategy = v2v.UniformWalk
	case "edge-weighted":
		opts.Strategy = v2v.EdgeWeightedWalk
	case "vertex-weighted":
		opts.Strategy = v2v.VertexWeightedWalk
	case "temporal":
		opts.Strategy = v2v.TemporalWalk
	case "node2vec":
		opts.Strategy = v2v.Node2VecWalk
	default:
		fatal(fmt.Errorf("unknown strategy %q", *strategy))
	}
	switch *objective {
	case "cbow":
		opts.Objective = v2v.CBOW
	case "skipgram":
		opts.Objective = v2v.SkipGram
	default:
		fatal(fmt.Errorf("unknown objective %q", *objective))
	}
	switch *sampler {
	case "ns":
		opts.Sampler = v2v.NegativeSampling
	case "hs":
		opts.Sampler = v2v.HierarchicalSoftmax
	default:
		fatal(fmt.Errorf("unknown sampler %q", *sampler))
	}

	start := time.Now()
	emb, err := v2v.Embed(g, opts)
	if err != nil {
		fatal(err)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "walks: %d tokens in %v; training: %v (%d epochs, final loss %.4f)\n",
			emb.Tokens, emb.WalkTime.Round(time.Millisecond),
			emb.TrainTime.Round(time.Millisecond), emb.Stats.Epochs, emb.Stats.FinalLoss)
		fmt.Fprintf(os.Stderr, "total: %v\n", time.Since(start).Round(time.Millisecond))
	}

	var output *os.File = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		output = f
	}
	if *format == "bin" {
		tokens := make([]string, g.NumVertices())
		for v := range tokens {
			tokens[v] = g.Name(v)
		}
		if err := v2v.SaveSnapshot(output, emb.Model, tokens); err != nil {
			fatal(err)
		}
		return
	}
	if err := emb.Model.Save(output, g.Name); err != nil {
		fatal(err)
	}
}

// serveMain runs the long-lived HTTP query server with graceful
// shutdown on SIGTERM/SIGINT.
func serveMain(args []string) {
	fs := flag.NewFlagSet("v2v serve", flag.ExitOnError)
	var (
		modelF   = fs.String("model", "", "saved model (required; snapshot, bundle or text, auto-detected)")
		addr     = fs.String("addr", "127.0.0.1:8080", "listen address")
		cache    = fs.Int("cache", 4096, "response cache entries (negative disables)")
		readonly = fs.Bool("readonly", false, "disable /v1/upsert and /v1/delete (they answer 403)")
		compact  = fs.Float64("compact-frac", 0, "tombstone fraction that triggers compaction (0 = 0.25 default, negative disables)")
		quiet    = fs.Bool("q", false, "suppress serving logs")
		slowMs   = fs.Float64("slowlog-ms", 0, "log a per-stage breakdown for requests slower than this many ms (0 disables)")
		pprof    = fs.Bool("pprof", false, "expose the net/http/pprof profiling handlers under /debug/pprof/")

		readConc    = fs.Int("read-concurrency", 0, "max in-flight read requests (0 = 16x GOMAXPROCS, min 64; negative = unbounded)")
		readQueue   = fs.Int("read-queue", 0, "read requests parked awaiting a slot before shedding with 429 (0 = 2x concurrency; negative = none)")
		writeConc   = fs.Int("write-concurrency", 0, "max in-flight write requests (0 = 4x GOMAXPROCS, min 16; negative = unbounded)")
		writeQueue  = fs.Int("write-queue", 0, "write requests parked awaiting a slot before shedding with 429 (0 = 2x concurrency; negative = none)")
		deadlineMs  = fs.Float64("deadline-ms", 0, "per-request deadline for reads in ms; expired requests answer 503 (0 disables)")
		wDeadlineMs = fs.Float64("write-deadline-ms", 0, "per-request deadline for writes in ms; expired requests answer 503 (0 disables)")
		noAdmission = fs.Bool("no-admission", false, "disable admission control entirely (no concurrency bounds, no shedding)")
		retryAfter  = fs.Int("retry-after", 0, "Retry-After seconds advertised on shed (429) responses (0 = 1)")

		router       = fs.Bool("router", false, "run as a scatter-gather router over the remote shard processes at -shard-addrs")
		shardAddrs   = fs.String("shard-addrs", "", "comma-separated shard base URLs in shard order (entry i is the -shard-id i process; requires -router)")
		allowPartial = fs.Bool("allow-partial", false, "router: skip unhealthy shards and flag responses partial instead of answering 503")
		probeMs      = fs.Float64("probe-ms", 0, "router: shard health-probe interval in ms (0 = 2000)")
		remoteMs     = fs.Float64("remote-timeout-ms", 0, "router: per-shard call timeout in ms when the request carries no deadline (0 = 5000)")
		shardID      = fs.Int("shard-id", -1, "serve one shard of an N-way partition (requires -shards N; shard processes back a -router)")

		walDir      = fs.String("wal", "", "write-ahead log directory (enables durable writes + crash recovery)")
		walSync     = fs.String("wal-sync", "", "wal fsync policy: always (default), interval or never")
		walSyncIvl  = fs.Duration("wal-sync-interval", 0, "flush period under -wal-sync interval (0 = 100ms)")
		walSegBytes = fs.Int64("wal-segment-bytes", 0, "rotate wal segments at this size (0 = 64 MiB)")
		walCkBytes  = fs.Int64("wal-checkpoint-bytes", 0, "checkpoint after this much new log volume (0 = 16 MiB, negative disables volume checkpoints)")
	)
	indexCfg := indexSelection(fs, "exact")
	fs.Parse(args)
	if *modelF == "" {
		fs.Usage()
		os.Exit(2)
	}
	cfg := v2v.ServeConfig{
		Addr:            *addr,
		ModelPath:       *modelF,
		CacheSize:       *cache,
		ReadOnly:        *readonly,
		CompactFraction: *compact,
		SlowLogMs:       *slowMs,
		Pprof:           *pprof,
		Admission: v2v.ServeAdmissionConfig{
			Disabled:          *noAdmission,
			Read:              v2v.ServeClassLimit{Concurrency: *readConc, Queue: *readQueue, DeadlineMs: *deadlineMs},
			Write:             v2v.ServeClassLimit{Concurrency: *writeConc, Queue: *writeQueue, DeadlineMs: *wDeadlineMs},
			RetryAfterSeconds: *retryAfter,
		},
	}
	if *noAdmission && (*readConc != 0 || *readQueue != 0 || *writeConc != 0 || *writeQueue != 0 || *deadlineMs != 0 || *wDeadlineMs != 0 || *retryAfter != 0) {
		fatal(fmt.Errorf("-no-admission conflicts with the per-class -read-*/-write-*/-*deadline-ms/-retry-after flags"))
	}
	if *walDir != "" {
		cfg.WAL = v2v.ServeWALConfig{
			Dir:             *walDir,
			Sync:            *walSync,
			SyncInterval:    *walSyncIvl,
			SegmentBytes:    *walSegBytes,
			CheckpointBytes: *walCkBytes,
		}
	} else if *walSync != "" || *walSyncIvl != 0 || *walSegBytes != 0 || *walCkBytes != 0 {
		fatal(fmt.Errorf("-wal-sync/-wal-sync-interval/-wal-segment-bytes/-wal-checkpoint-bytes require -wal DIR"))
	}
	var err error
	if cfg.Index, err = indexCfg(); err != nil {
		fatal(err)
	}
	switch {
	case *router && *shardID >= 0:
		fatal(fmt.Errorf("-router and -shard-id are mutually exclusive (a process is a router or a shard, not both)"))
	case *router:
		for _, a := range strings.Split(*shardAddrs, ",") {
			if a = strings.TrimSpace(a); a != "" {
				cfg.ShardAddrs = append(cfg.ShardAddrs, a)
			}
		}
		if len(cfg.ShardAddrs) == 0 {
			fatal(fmt.Errorf("-router requires -shard-addrs host:port,... (one per shard, in shard order)"))
		}
		cfg.Router = true
		cfg.AllowPartial = *allowPartial
		cfg.ProbeInterval = time.Duration(*probeMs * float64(time.Millisecond))
		cfg.RemoteTimeout = time.Duration(*remoteMs * float64(time.Millisecond))
	case *shardID >= 0:
		if cfg.Index.Shards < 2 {
			fatal(fmt.Errorf("-shard-id requires -shards N with N >= 2 (the partition width)"))
		}
		cfg.ShardID = *shardID
		cfg.ShardCount = cfg.Index.Shards
	default:
		if *shardAddrs != "" || *allowPartial || *probeMs != 0 || *remoteMs != 0 {
			fatal(fmt.Errorf("-shard-addrs/-allow-partial/-probe-ms/-remote-timeout-ms require -router"))
		}
	}
	if !*quiet {
		cfg.Log = log.New(os.Stderr, "", log.LstdFlags)
	}

	// SIGTERM/SIGINT cancel the context; Serve then stops accepting,
	// drains in-flight requests and returns nil on a clean shutdown.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	if err := v2v.Serve(ctx, cfg); err != nil {
		fatal(err)
	}
}

// indexMain builds an HNSW graph over a saved model and writes the
// model + graph bundle, so serve/query restarts skip the build.
func indexMain(args []string) {
	fs := flag.NewFlagSet("v2v index", flag.ExitOnError)
	var (
		modelF  = fs.String("model", "", "saved model (required; snapshot or text, auto-detected)")
		outF    = fs.String("out", "", "output bundle path (required)")
		verbose = fs.Bool("v", false, "log build timing to stderr")
	)
	indexCfg := indexSelection(fs, "hnsw")
	fs.Parse(args)
	if *modelF == "" || *outF == "" {
		fs.Usage()
		os.Exit(2)
	}
	cfg, err := indexCfg()
	if err != nil {
		fatal(err)
	}
	if cfg.Kind != v2v.HNSWIndex {
		fatal(fmt.Errorf("only hnsw graphs are persisted (exact and ivf rebuild quickly); got -index %s", cfg.Kind))
	}
	f, err := os.Open(*modelF)
	if err != nil {
		fatal(err)
	}
	model, tokens, err := v2v.LoadModel(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	idx, err := v2v.NewIndex(model, cfg)
	if err != nil {
		fatal(err)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "index: %d vectors, dim %d: hnsw graph built in %v\n",
			model.Vocab, model.Dim, time.Since(start).Round(time.Millisecond))
	}
	// Atomic write (temp + rename): `v2v index -out` may target the
	// path a live server reloads from.
	if err := v2v.SaveIndexedSnapshotFile(*outF, model, tokens, idx); err != nil {
		fatal(err)
	}
}

// queryMain serves top-k neighbor queries over a saved model.
func queryMain(args []string) {
	fs := flag.NewFlagSet("v2v query", flag.ExitOnError)
	var (
		modelF  = fs.String("model", "", "saved vector file (required; output of v2v -out or v2v index)")
		k       = fs.Int("k", 10, "neighbors per query")
		verbose = fs.Bool("v", false, "log index build and query timing to stderr")
	)
	indexCfg := indexSelection(fs, "exact")
	fs.Parse(args)
	if *modelF == "" {
		fs.Usage()
		os.Exit(2)
	}
	cfg, err := indexCfg()
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	// A bundle file with a matching HNSW section binds the prebuilt
	// graph here instead of rebuilding.
	model, tokens, idx, err := v2v.LoadIndexedSnapshot(*modelF, cfg)
	if err != nil {
		fatal(err)
	}
	byToken := make(map[string]int, len(tokens))
	for i, tok := range tokens {
		byToken[tok] = i
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "model: %d vectors, dim %d; %s index ready in %v\n",
			model.Vocab, model.Dim, cfg.Kind, time.Since(start).Round(time.Millisecond))
	}

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	queries := fs.Args()
	answer := func(tok string) {
		w, ok := byToken[tok]
		if !ok {
			fmt.Fprintf(os.Stderr, "v2v query: unknown vertex %q\n", tok)
			return
		}
		qStart := time.Now()
		res := idx.SearchRow(w, *k)
		if *verbose {
			fmt.Fprintf(os.Stderr, "query %q: %v\n", tok, time.Since(qStart).Round(time.Microsecond))
		}
		for _, r := range res {
			fmt.Fprintf(out, "%s\t%s\t%.6f\n", tok, tokens[r.ID], r.Score)
		}
	}
	if len(queries) > 0 {
		for _, q := range queries {
			answer(q)
		}
		return
	}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		if tok := sc.Text(); tok != "" {
			answer(tok)
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "v2v:", err)
	os.Exit(1)
}
