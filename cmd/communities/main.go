// Command communities detects communities in a graph with every
// method in the library — V2V embedding + k-means, CNM greedy
// modularity, Girvan-Newman, Louvain and label propagation — and
// prints a comparison of modularity and runtime (plus pairwise
// precision/recall when ground truth is supplied).
//
// Usage:
//
//	communities -in graph.txt -k 10 [-truth labels.txt]
//	            [-methods v2v,cnm,gn,louvain,lpa] [-dim 10] [-seed 1]
//
// labels.txt holds one integer community label per line, in vertex
// order.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"v2v"
)

func main() {
	var (
		in      = flag.String("in", "", "input edge list (required)")
		truthF  = flag.String("truth", "", "ground-truth labels, one per line (optional)")
		k       = flag.Int("k", 0, "number of communities for v2v/cnm/gn (0 = let each method decide)")
		methods = flag.String("methods", "v2v,cnm,gn,louvain,lpa,walktrap,spectral", "comma-separated methods")
		dim     = flag.Int("dim", 10, "V2V embedding dimensions (paper Table I uses 10)")
		walks   = flag.Int("walks", 10, "V2V walks per vertex")
		length  = flag.Int("length", 80, "V2V walk length")
		seed    = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	g, err := v2v.ReadEdgeList(f, v2v.EdgeListOptions{})
	f.Close()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	var truth []int
	if *truthF != "" {
		truth, err = readLabels(*truthF)
		if err != nil {
			fatal(err)
		}
		if len(truth) != g.NumVertices() {
			fatal(fmt.Errorf("%d labels for %d vertices", len(truth), g.NumVertices()))
		}
	}

	fmt.Printf("%-10s %10s %10s %10s %12s %8s\n", "method", "comms", "modularity", "precision", "recall", "time")
	for _, m := range strings.Split(*methods, ",") {
		m = strings.TrimSpace(m)
		start := time.Now()
		var part []int
		switch m {
		case "v2v":
			opts := v2v.DefaultOptions(*dim)
			opts.WalksPerVertex = *walks
			opts.WalkLength = *length
			opts.Seed = *seed
			emb, err := v2v.Embed(g, opts)
			if err != nil {
				fatal(err)
			}
			kk := *k
			if kk <= 0 {
				fatal(fmt.Errorf("v2v needs -k"))
			}
			res, err := emb.DetectCommunities(v2v.CommunityConfig{K: kk, Restarts: 100, Seed: *seed})
			if err != nil {
				fatal(err)
			}
			part = res.Partition
		case "cnm":
			res, err := v2v.CNM(g, v2v.CNMConfig{TargetK: *k})
			if err != nil {
				fatal(err)
			}
			part = res.Partition
		case "gn":
			res, err := v2v.GirvanNewman(g, v2v.GNConfig{TargetK: *k})
			if err != nil {
				fatal(err)
			}
			part = res.Partition
		case "louvain":
			res, err := v2v.Louvain(g, v2v.LouvainConfig{Seed: *seed})
			if err != nil {
				fatal(err)
			}
			part = res.Partition
		case "lpa":
			part, err = v2v.LabelPropagation(g, v2v.LabelPropagationConfig{Seed: *seed})
			if err != nil {
				fatal(err)
			}
		case "walktrap":
			res, err := v2v.Walktrap(g, v2v.WalktrapConfig{TargetK: *k})
			if err != nil {
				fatal(err)
			}
			part = res.Partition
		case "spectral":
			kk := *k
			if kk <= 0 {
				fatal(fmt.Errorf("spectral needs -k"))
			}
			part, err = v2v.SpectralCommunities(g, v2v.SpectralCommunitiesConfig{K: kk, Seed: *seed})
			if err != nil {
				fatal(err)
			}
		default:
			fatal(fmt.Errorf("unknown method %q", m))
		}
		elapsed := time.Since(start)

		q, err := v2v.Modularity(g, part)
		if err != nil {
			fatal(err)
		}
		nc := countCommunities(part)
		prec, rec := "-", "-"
		if truth != nil {
			p, r, err := v2v.EvaluateCommunities(truth, part)
			if err != nil {
				fatal(err)
			}
			prec = fmt.Sprintf("%.3f", p)
			rec = fmt.Sprintf("%.3f", r)
		}
		fmt.Printf("%-10s %10d %10.4f %10s %12s %8s\n", m, nc, q, prec, rec, elapsed.Round(time.Millisecond))
	}
}

func countCommunities(part []int) int {
	seen := map[int]bool{}
	for _, c := range part {
		seen[c] = true
	}
	return len(seen)
}

func readLabels(path string) ([]int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var labels []int
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		l, err := strconv.Atoi(line)
		if err != nil {
			return nil, fmt.Errorf("bad label %q: %v", line, err)
		}
		labels = append(labels, l)
	}
	return labels, sc.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "communities:", err)
	os.Exit(1)
}
