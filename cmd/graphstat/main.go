// Command graphstat prints structural statistics of a graph —
// vertices, edges, density, degree distribution, components,
// clustering coefficient — and optionally writes a degree histogram
// SVG. Useful for sanity-checking inputs before embedding them.
//
// Usage:
//
//	graphstat -in graph.txt [-directed] [-named] [-histogram deg.svg]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"

	"v2v"
)

func main() {
	var (
		in       = flag.String("in", "", "input edge list (required)")
		directed = flag.Bool("directed", false, "treat edges as directed")
		named    = flag.Bool("named", false, "vertex names instead of integer indices")
		histF    = flag.String("histogram", "", "write a degree-histogram SVG here")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	g, err := v2v.ReadEdgeList(f, v2v.EdgeListOptions{Directed: *directed, Named: *named})
	f.Close()
	if err != nil {
		fatal(err)
	}

	n := g.NumVertices()
	m := g.NumEdges()
	fmt.Printf("vertices:             %d\n", n)
	fmt.Printf("edges:                %d\n", m)
	fmt.Printf("directed:             %v\n", g.Directed())
	fmt.Printf("weighted:             %v\n", g.Weighted())
	fmt.Printf("temporal:             %v\n", g.Temporal())
	fmt.Printf("density:              %.6f\n", g.Density())

	hist := g.DegreeHistogram()
	var sum, maxD int
	for d, c := range hist {
		sum += d * c
		if c > 0 {
			maxD = d
		}
	}
	if n > 0 {
		fmt.Printf("mean degree:          %.3f\n", float64(sum)/float64(n))
	}
	fmt.Printf("max degree:           %d\n", maxD)
	fmt.Printf("isolated vertices:    %d\n", countIsolated(hist))

	_, comps := g.ConnectedComponents()
	fmt.Printf("connected components: %d\n", comps)
	if !g.Directed() {
		fmt.Printf("avg clustering coef:  %.4f\n", g.AverageClusteringCoefficient())
	}

	// Degree percentiles.
	degrees := make([]int, 0, n)
	for v := 0; v < n; v++ {
		degrees = append(degrees, g.Degree(v))
	}
	sort.Ints(degrees)
	if n > 0 {
		fmt.Printf("degree percentiles:   p50=%d p90=%d p99=%d\n",
			degrees[n/2], degrees[n*9/10], degrees[n*99/100])
	}

	if *histF != "" {
		chart := &v2v.BarChart{
			Title:  "degree distribution",
			XLabel: "degree",
			YLabel: "vertices",
		}
		for d, c := range hist {
			chart.Labels = append(chart.Labels, strconv.Itoa(d))
			chart.Values = append(chart.Values, float64(c))
		}
		out, err := os.Create(*histF)
		if err != nil {
			fatal(err)
		}
		if err := chart.WriteSVG(out); err != nil {
			fatal(err)
		}
		if err := out.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *histF)
	}
}

func countIsolated(hist []int) int {
	if len(hist) == 0 {
		return 0
	}
	return hist[0]
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "graphstat:", err)
	os.Exit(1)
}
