package v2v

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// TestRouterSmokeE2E is the `make router-smoke` target: the
// distributed deployment as it actually ships. It builds the real v2v
// binary, spawns four shard processes and a scatter-gather router
// over them, and requires every read endpoint to answer byte-for-byte
// identically to an in-process `-shards 4` server on the same bundle.
// Then it SIGKILLs one shard and asserts the documented degraded
// behavior: the router answers 503 (naming the outage) within the
// client timeout — never a hang — and /metrics reports the backend
// down. Set ROUTER_SMOKE_OUT to save the fleet's combined log (CI
// uploads it as an artifact).
func TestRouterSmokeE2E(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not on PATH")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "v2v")
	build := exec.Command("go", "build", "-o", bin, "./cmd/v2v")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building v2v: %v\n%s", err, out)
	}

	// The same deterministic model the serve smoke uses.
	const vocab, dim, shards = 60, 8, 4
	m := &Model{Dim: dim, Vocab: vocab, Vectors: make([]float32, vocab*dim)}
	for i := range m.Vectors {
		m.Vectors[i] = float32((i*2654435761)%997) / 997
	}
	model := filepath.Join(dir, "model.snap")
	f, err := os.Create(model)
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveSnapshot(f, m, nil); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Every process's log lands in one combined, labeled buffer so a
	// failure (or ROUTER_SMOKE_OUT) shows the whole fleet's view.
	var logMu sync.Mutex
	var fleetLog bytes.Buffer
	logf := func(tag, line string) {
		logMu.Lock()
		fleetLog.WriteString(tag + ": " + line + "\n")
		logMu.Unlock()
	}
	t.Cleanup(func() {
		if out := os.Getenv("ROUTER_SMOKE_OUT"); out != "" {
			logMu.Lock()
			defer logMu.Unlock()
			if err := os.WriteFile(out, fleetLog.Bytes(), 0o644); err != nil {
				t.Errorf("writing fleet log: %v", err)
			} else {
				t.Logf("fleet log written to %s (%d bytes)", out, fleetLog.Len())
			}
		}
	})

	// start spawns `v2v serve` with the given extra flags and returns
	// the process and its bound base URL (scanned from the "listening
	// on" log line; stderr keeps draining into the fleet log).
	start := func(tag string, extra ...string) (*exec.Cmd, string) {
		t.Helper()
		args := append([]string{"serve", "-model", model, "-addr", "127.0.0.1:0"}, extra...)
		cmd := exec.Command(bin, args...)
		stderr, err := cmd.StderrPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting %s: %v", tag, err)
		}
		t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })
		addrc := make(chan string, 1)
		go func() {
			sc := bufio.NewScanner(stderr)
			for sc.Scan() {
				line := sc.Text()
				logf(tag, line)
				if _, after, ok := strings.Cut(line, "listening on "); ok {
					select {
					case addrc <- strings.TrimSpace(after):
					default:
					}
				}
			}
		}()
		select {
		case a := <-addrc:
			return cmd, "http://" + a
		case <-time.After(15 * time.Second):
			t.Fatalf("%s never reported its address; fleet log:\n%s", tag, fleetLog.String())
			return nil, ""
		}
	}

	// The fleet: four shard processes, the router over them, and the
	// in-process sharded reference the router must match.
	shardCmds := make([]*exec.Cmd, shards)
	addrs := make([]string, shards)
	for i := 0; i < shards; i++ {
		shardCmds[i], addrs[i] = start(fmt.Sprintf("shard%d", i),
			"-shards", fmt.Sprint(shards), "-shard-id", fmt.Sprint(i))
	}
	routerCmd, routerURL := start("router",
		"-router", "-shard-addrs", strings.Join(addrs, ","), "-probe-ms", "50")
	refCmd, refURL := start("reference", "-shards", fmt.Sprint(shards))

	client := &http.Client{Timeout: 10 * time.Second}
	fetch := func(method, url, body string) (int, string) {
		t.Helper()
		var resp *http.Response
		var err error
		if method == "GET" {
			resp, err = client.Get(url)
		} else {
			resp, err = client.Post(url, "application/json", strings.NewReader(body))
		}
		if err != nil {
			t.Fatalf("%s %s: %v", method, url, err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("%s %s: reading body: %v", method, url, err)
		}
		return resp.StatusCode, string(b)
	}

	// Wait for the router's first probe round to admit every shard.
	deadline := time.Now().Add(15 * time.Second)
	for {
		code, body := fetch("GET", routerURL+"/stats", "")
		if code == 200 && strings.Count(body, `"healthy":true`) == shards {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("router never saw all %d shards healthy; last /stats: %s\nfleet log:\n%s",
				shards, body, fleetLog.String())
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Bit-identical reads: every endpoint, raw bodies compared.
	compare := func(method, path, body string) {
		t.Helper()
		wantCode, want := fetch(method, refURL+path, body)
		gotCode, got := fetch(method, routerURL+path, body)
		if gotCode != wantCode || got != want {
			t.Errorf("%s %s diverges:\nreference (%d): %s\nrouter    (%d): %s",
				method, path, wantCode, want, gotCode, got)
		}
	}
	compare("GET", "/v1/neighbors?vertex=3&k=5", "")
	compare("GET", "/v1/neighbors?vertex=59&k=12", "")
	compare("GET", "/v1/similarity?a=1&b=2", "")
	compare("GET", "/v1/similarity?a=40&b=40", "")
	compare("GET", "/v1/analogy?a=1&b=2&c=3&k=4", "")
	compare("GET", "/v1/predict?u=4&v=5", "")
	compare("GET", "/v1/predict?u=4&v=5&hadamard=true", "")
	compare("GET", "/v1/vocab?limit=100", "")
	compare("GET", "/v1/neighbors?vertex=nope&k=3", "") // 404 parity
	compare("POST", "/v1/neighbors/batch", `{"vertices":["1","17","58"],"k":6}`)
	compare("POST", "/v1/similarity/batch", `{"pairs":[["1","2"],["30","45"]]}`)
	compare("POST", "/v1/predict/batch", `{"pairs":[["4","5"],["20","31"]]}`)

	// Writes route by hash and the served world stays identical.
	compare("POST", "/v1/upsert", `{"vertex":"smoke-w","vector":[1,0,0,0,0,0,0,0]}`)
	compare("GET", "/v1/neighbors?vertex=smoke-w&k=4", "")
	compare("POST", "/v1/delete", `{"vertex":"3"}`)
	compare("GET", "/v1/neighbors?vertex=3&k=4", "") // 404 parity after delete

	// Kill one shard mid-flight — the documented degraded mode: reads
	// answer 503 naming the outage, promptly, and membership surfaces
	// in /stats and /metrics. SIGKILL, not SIGTERM: no goodbye.
	const victim = 1
	if err := shardCmds[victim].Process.Kill(); err != nil {
		t.Fatalf("killing shard %d: %v", victim, err)
	}
	shardCmds[victim].Wait()
	logf("harness", fmt.Sprintf("SIGKILLed shard %d", victim))
	deadline = time.Now().Add(15 * time.Second)
	for {
		code, body := fetch("GET", routerURL+"/stats", "")
		if code == 200 && strings.Count(body, `"healthy":true`) == shards-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("router never noticed shard %d dying; last /stats: %s\nfleet log:\n%s",
				victim, body, fleetLog.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
	// A cold fan-out read (k it has never served, so the response
	// cache cannot answer) must fail fast and explain itself.
	degradedStart := time.Now()
	code, body := fetch("GET", routerURL+"/v1/neighbors?vertex=1&k=7", "")
	if code != 503 || !strings.Contains(body, "unavailable") {
		t.Fatalf("degraded read: status %d body %s, want 503 naming the outage", code, body)
	}
	if elapsed := time.Since(degradedStart); elapsed > 5*time.Second {
		t.Fatalf("degraded read took %v — the router hung instead of failing fast", elapsed)
	}
	code, page := fetch("GET", routerURL+"/metrics", "")
	downSeen := false
	for _, line := range strings.Split(page, "\n") {
		if strings.HasPrefix(line, fmt.Sprintf(`v2v_backend_up{shard="%d",`, victim)) && strings.HasSuffix(line, " 0") {
			downSeen = true
		}
	}
	if code != 200 || !downSeen {
		t.Fatalf("router /metrics does not report shard %d down (status %d):\n%s", victim, code, page)
	}
	// The healthy shards keep answering health checks; the reference
	// (no remote fleet) is untouched.
	if code, _ := fetch("GET", refURL+"/v1/neighbors?vertex=1&k=7", ""); code != 200 {
		t.Fatalf("reference server degraded by shard kill: status %d", code)
	}

	// Clean SIGTERM shutdown for every surviving process.
	for _, pc := range []struct {
		tag string
		cmd *exec.Cmd
	}{{"router", routerCmd}, {"reference", refCmd},
		{"shard0", shardCmds[0]}, {"shard2", shardCmds[2]}, {"shard3", shardCmds[3]}} {
		if err := pc.cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatalf("SIGTERM %s: %v", pc.tag, err)
		}
		done := make(chan error, 1)
		go func() { done <- pc.cmd.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("%s exited uncleanly after SIGTERM: %v\nfleet log:\n%s", pc.tag, err, fleetLog.String())
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("%s did not exit within 10s of SIGTERM; fleet log:\n%s", pc.tag, fleetLog.String())
		}
	}
}
