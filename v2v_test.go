package v2v

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// miniBenchmark is a scaled-down paper benchmark for integration
// tests: 5 communities of 30 vertices.
func miniBenchmark(alpha float64, seed uint64) (*Graph, []int) {
	return CommunityBenchmark(BenchmarkConfig{
		NumCommunities: 5, CommunitySize: 30, Alpha: alpha, InterEdges: 30, Seed: seed,
	})
}

func miniOptions(dim int) Options {
	o := DefaultOptions(dim)
	o.WalksPerVertex = 8
	o.WalkLength = 40
	o.Epochs = 4
	o.Seed = 17
	return o
}

func TestPublicPipelineCommunities(t *testing.T) {
	g, truth := miniBenchmark(0.6, 1)
	emb, err := Embed(g, miniOptions(16))
	if err != nil {
		t.Fatal(err)
	}
	res, err := emb.DetectCommunities(CommunityConfig{K: 5, Restarts: 20, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	p, r, err := EvaluateCommunities(truth, res.Partition)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.85 || r < 0.85 {
		t.Fatalf("V2V communities: precision %.3f recall %.3f", p, r)
	}
}

// TestTableOneShape is the miniature Table I: on the same graph, V2V
// and both graph baselines must all recover the communities well, and
// the graph algorithms should be at least as accurate as V2V (the
// paper's headline qualitative finding), while V2V's *clustering*
// phase is far faster than either graph algorithm.
func TestTableOneShape(t *testing.T) {
	g, truth := miniBenchmark(0.5, 3)
	emb, err := Embed(g, miniOptions(16))
	if err != nil {
		t.Fatal(err)
	}
	v2vRes, err := emb.DetectCommunities(CommunityConfig{K: 5, Restarts: 20, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	v2vP, v2vR, _ := EvaluateCommunities(truth, v2vRes.Partition)

	cnm, err := CNM(g, CNMConfig{TargetK: 5})
	if err != nil {
		t.Fatal(err)
	}
	cnmP, cnmR, _ := EvaluateCommunities(truth, cnm.Partition)

	gn, err := GirvanNewman(g, GNConfig{TargetK: 5})
	if err != nil {
		t.Fatal(err)
	}
	gnP, gnR, _ := EvaluateCommunities(truth, gn.Partition)

	t.Logf("V2V: %.3f/%.3f  CNM: %.3f/%.3f  GN: %.3f/%.3f",
		v2vP, v2vR, cnmP, cnmR, gnP, gnR)
	for name, val := range map[string]float64{
		"v2v-p": v2vP, "v2v-r": v2vR,
		"cnm-p": cnmP, "cnm-r": cnmR,
		"gn-p": gnP, "gn-r": gnR,
	} {
		if val < 0.8 {
			t.Errorf("%s = %.3f below 0.8", name, val)
		}
	}
	// The paper's trade-off: graph algorithms at least match V2V's
	// precision (1.00 vs 0.952 average in Table I). Allow equality.
	if cnmP+cnmR < v2vP+v2vR-0.1 {
		t.Errorf("CNM (%v) unexpectedly much worse than V2V (%v)", cnmP+cnmR, v2vP+v2vR)
	}
}

func TestPCAVisualizationPath(t *testing.T) {
	g, truth := miniBenchmark(0.8, 5)
	emb, err := Embed(g, miniOptions(24))
	if err != nil {
		t.Fatal(err)
	}
	proj, _, err := emb.ProjectPCA(2, 6)
	if err != nil {
		t.Fatal(err)
	}
	xs := make([]float64, len(proj))
	ys := make([]float64, len(proj))
	for i, p := range proj {
		xs[i], ys[i] = p[0], p[1]
	}
	plot := &ScatterPlot{Title: "Figure 4 (mini)", X: xs, Y: ys, Category: truth}
	var buf bytes.Buffer
	if err := plot.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<svg") {
		t.Fatal("no SVG output")
	}
}

func TestFeaturePredictionPath(t *testing.T) {
	ds, err := GenerateOpenFlights(OpenFlightsConfig{
		NumAirports: 500, NumRegions: 5, CountriesPerRegion: 4,
		HubFraction: 20, IntlDegree: 5, TrunkDegree: 3, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := miniOptions(24)
	opts.WalksPerVertex = 6
	opts.WalkLength = 30
	emb, err := Embed(ds.Graph, opts)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := emb.CrossValidateLabels(ds.Continent, 3, 10, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Continent prediction on a stratified route graph should beat
	// the ~1/5 chance level by a wide margin.
	if acc < 0.6 {
		t.Fatalf("continent prediction accuracy %.3f", acc)
	}
}

func TestModelSaveLoadThroughFacade(t *testing.T) {
	g, _ := miniBenchmark(0.5, 9)
	emb, err := Embed(g, miniOptions(8))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := emb.Model.Save(&buf, g.Name); err != nil {
		t.Fatal(err)
	}
	m, tokens, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m.Vocab != emb.Model.Vocab || m.Dim != emb.Model.Dim {
		t.Fatal("round trip changed shape")
	}
	if tokens[0] != g.Name(0) {
		t.Fatal("token naming lost")
	}
}

func TestEdgeListThroughFacade(t *testing.T) {
	g, _ := miniBenchmark(0.4, 11)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf, EdgeListOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatal("edge list round trip lost edges")
	}
}

func TestGeneratorsExposed(t *testing.T) {
	if g := ErdosRenyiGNM(20, 30, 1); g.NumEdges() != 30 {
		t.Fatal("GNM broken")
	}
	if g := ErdosRenyiGNP(20, 0.5, 1); g.NumVertices() != 20 {
		t.Fatal("GNP broken")
	}
	if g := BarabasiAlbert(30, 2, 1); g.NumVertices() != 30 {
		t.Fatal("BA broken")
	}
}

func TestMetricsExposed(t *testing.T) {
	truth := []int{0, 0, 1, 1}
	pred := []int{1, 1, 0, 0}
	if f1, err := PairwiseF1(truth, pred); err != nil || f1 != 1 {
		t.Fatalf("F1 = %v, %v", f1, err)
	}
	if nmi, err := NMI(truth, pred); err != nil || math.Abs(nmi-1) > 1e-12 {
		t.Fatalf("NMI = %v, %v", nmi, err)
	}
	if ari, err := AdjustedRandIndex(truth, pred); err != nil || math.Abs(ari-1) > 1e-12 {
		t.Fatalf("ARI = %v, %v", ari, err)
	}
}

func TestTSNEExposed(t *testing.T) {
	pts := [][]float64{{0, 0}, {0, 1}, {10, 10}, {10, 11}, {20, 0}, {20, 1}}
	out, err := TSNE(pts, TSNEConfig{Iterations: 50, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 6 {
		t.Fatal("t-SNE output shape wrong")
	}
}

func TestKMeansExposed(t *testing.T) {
	pts := [][]float64{{0, 0}, {0.1, 0}, {10, 10}, {10.1, 10}}
	res, err := KMeans(pts, KMeansConfig{K: 2, Restarts: 5, PlusPlus: true, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	if res.Assignments[0] != res.Assignments[1] || res.Assignments[0] == res.Assignments[2] {
		t.Fatalf("clustering wrong: %v", res.Assignments)
	}
}

func TestKNNExposed(t *testing.T) {
	clf := NewKNNClassifier(1, EuclideanDistance, [][]float64{{0}, {10}}, []int{0, 1})
	if clf.Predict([]float64{1}) != 0 {
		t.Fatal("knn wrong")
	}
	acc, err := CrossValidateKNN([][]float64{{0}, {0.1}, {10}, {10.1}}, []int{0, 0, 1, 1}, 1, 2, EuclideanDistance, 15)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.99 {
		t.Fatalf("cv accuracy %v", acc)
	}
}

func TestBaselinesExposed(t *testing.T) {
	g, truth := CommunityBenchmark(BenchmarkConfig{
		NumCommunities: 3, CommunitySize: 12, Alpha: 0.9, InterEdges: 4, Seed: 16,
	})
	lv, err := Louvain(g, LouvainConfig{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if p, r, _ := EvaluateCommunities(truth, lv.Partition); p < 0.9 || r < 0.9 {
		t.Fatalf("Louvain facade: %.2f/%.2f", p, r)
	}
	lp, err := LabelPropagation(g, LabelPropagationConfig{Seed: 18})
	if err != nil {
		t.Fatal(err)
	}
	if p, r, _ := EvaluateCommunities(truth, lp); p < 0.8 || r < 0.8 {
		t.Fatalf("LPA facade: %.2f/%.2f", p, r)
	}
	if q, err := Modularity(g, truth); err != nil || q < 0.3 {
		t.Fatalf("Modularity facade: %v, %v", q, err)
	}
}

func TestForceLayoutExposed(t *testing.T) {
	g, truth := CommunityBenchmark(BenchmarkConfig{
		NumCommunities: 2, CommunitySize: 15, Alpha: 0.8, InterEdges: 3, Seed: 19,
	})
	x, y := ForceLayout(g, LayoutConfig{Iterations: 80, Seed: 20})
	if len(x) != 30 || len(y) != 30 {
		t.Fatal("layout shape wrong")
	}
	plot := &GraphPlot{X: x, Y: y, Category: truth}
	var buf bytes.Buffer
	for _, e := range g.Edges() {
		plot.Edges = append(plot.Edges, [2]int{e.From, e.To})
	}
	if err := plot.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestNode2VecStrategyThroughFacade(t *testing.T) {
	g, truth := miniBenchmark(0.7, 21)
	o := miniOptions(16)
	o.Strategy = Node2VecWalk
	o.ReturnParam = 1
	o.InOutParam = 0.5
	emb, err := Embed(g, o)
	if err != nil {
		t.Fatal(err)
	}
	res, err := emb.DetectCommunities(CommunityConfig{K: 5, Restarts: 10, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	if p, r, _ := EvaluateCommunities(truth, res.Partition); p < 0.8 || r < 0.8 {
		t.Fatalf("node2vec variant: %.2f/%.2f", p, r)
	}
}
