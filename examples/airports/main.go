// Airports: the paper's OpenFlights experiments (Sections IV and V)
// on the synthetic route network. Embeds the directed route graph,
// visualizes it with PCA (writing fig8-style SVG), and predicts
// airport countries with cross-validated k-NN (fig9/fig10-style
// sweeps).
//
//	go run ./examples/airports
package main

import (
	"fmt"
	"log"
	"os"

	"v2v"
)

func main() {
	// A mid-size world: ~2000 airports across 8 regions. Use
	// v2v.DefaultOpenFlightsConfig for the full 10k-airport scale.
	cfg := v2v.OpenFlightsConfig{
		NumAirports: 2000, NumRegions: 8, CountriesPerRegion: 10,
		HubFraction: 25, IntlDegree: 6, TrunkDegree: 4, Seed: 2,
	}
	ds, err := v2v.GenerateOpenFlights(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("route network: %d airports, %d routes, %d countries, %d continents\n",
		ds.Graph.NumVertices(), ds.Graph.NumEdges(), ds.NumCountries, ds.NumRegions)

	// Embed the directed route graph. Only topology goes in — no
	// geographic metadata, exactly as in the paper.
	opts := v2v.DefaultOptions(50)
	opts.Seed = 9
	emb, err := v2v.Embed(ds.Graph, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("embedded in %v (+%v walks)\n", emb.TrainTime, emb.WalkTime)

	// --- Section IV: PCA visualization, colored by continent.
	proj, _, err := emb.ProjectPCA(2, 4)
	if err != nil {
		log.Fatal(err)
	}
	xs := make([]float64, len(proj))
	ys := make([]float64, len(proj))
	for i, p := range proj {
		xs[i], ys[i] = p[0], p[1]
	}
	plot := &v2v.ScatterPlot{
		Title: "Airport embeddings (PCA), colored by continent — no geography in training",
		X:     xs, Y: ys,
		Category: ds.Continent,
		Labels:   ds.RegionNames,
	}
	f, err := os.Create("airports_pca.svg")
	if err != nil {
		log.Fatal(err)
	}
	if err := plot.WriteSVG(f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Println("wrote airports_pca.svg (continents should form distinct clusters)")

	// --- Section V: predict airport countries with k-NN.
	fmt.Println("\ncountry prediction, 10-fold cross-validated k-NN (cosine):")
	for _, k := range []int{1, 3, 5, 10} {
		acc, err := emb.CrossValidateLabels(ds.Country, k, 10, 6)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  k = %2d: accuracy %.3f\n", k, acc)
	}

	// Recover deliberately hidden labels (the paper's missing-data
	// scenario).
	masked := append([]int(nil), ds.Country...)
	hidden := []int{10, 100, 500, 1000, 1500}
	for _, v := range hidden {
		masked[v] = -1
	}
	completed, err := emb.PredictLabels(masked, 3)
	if err != nil {
		log.Fatal(err)
	}
	correct := 0
	for _, v := range hidden {
		if completed[v] == ds.Country[v] {
			correct++
		}
	}
	fmt.Printf("\nrecovered %d of %d deliberately hidden country labels\n", correct, len(hidden))
}
