// Link prediction: the "predicting relationships between pairs of
// vertices" application from the paper's conclusion. Hold out a
// fraction of edges, embed the remaining graph with V2V, and rank
// candidate pairs by embedding similarity — compared against the
// classic topological heuristics.
//
//	go run ./examples/linkprediction
package main

import (
	"fmt"
	"log"

	"v2v"
)

func main() {
	// The synthetic benchmark at alpha = 0.4: enough structure that
	// links are predictable, enough sparsity that it is not trivial.
	g, _ := v2v.CommunityBenchmark(v2v.BenchmarkConfig{
		NumCommunities: 10, CommunitySize: 50, Alpha: 0.4, InterEdges: 100, Seed: 4,
	})
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	// Hide 15% of the edges; the embedding never sees them.
	split, err := v2v.HoldOutEdges(g, 0.15, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("held out %d edges as positives, sampled %d non-edges as negatives\n",
		len(split.TestEdges), len(split.NonEdges))

	opts := v2v.DefaultOptions(50)
	opts.Seed = 15
	emb, err := v2v.Embed(split.Train, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("embedded the training graph in %v\n\n", emb.TrainTime+emb.WalkTime)

	scorers := []v2v.LinkScorer{
		v2v.EmbeddingLinkScorer(emb.Model, false),
		v2v.EmbeddingLinkScorer(emb.Model, true),
		v2v.CommonNeighborsScorer(split.Train),
		v2v.JaccardScorer(split.Train),
		v2v.AdamicAdarScorer(split.Train),
		v2v.PreferentialAttachmentScorer(split.Train),
	}
	fmt.Printf("%-26s %8s %14s\n", "scorer", "AUC", "precision@k")
	for _, s := range scorers {
		res := v2v.EvaluateLinkScorer(s, split)
		fmt.Printf("%-26s %8.3f %14.3f\n", res.Scorer, res.AUC, res.PrecisionAtK)
	}
	fmt.Println("\nEmbedding similarity competes with the topological heuristics and,")
	fmt.Println("unlike them, also scores pairs with no common neighbours at all.")
}
