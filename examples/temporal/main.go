// Temporal: the constrained random walks of the paper's Section II-A
// on a timestamped graph. Builds a synthetic request-routing network
// (the paper's motivating client/workstation example) where service
// paths obey timestamp order, embeds it with time-respecting walks,
// and shows that tiers of the service topology separate in the
// embedding.
//
//	go run ./examples/temporal
package main

import (
	"fmt"
	"log"

	"v2v"
)

func main() {
	// Three-tier service topology: 20 clients -> 10 frontends -> 5
	// backends, with request edges timestamped so that a walk can
	// only follow a causally consistent request path.
	const (
		clients   = 20
		frontends = 10
		backends  = 5
	)
	b := v2v.NewGraphBuilder(0)
	b.SetDirected(true)
	tier := make([]int, 0, clients+frontends+backends)
	var t int64
	for c := 0; c < clients; c++ {
		tier = append(tier, 0)
	}
	for f := 0; f < frontends; f++ {
		tier = append(tier, 1)
	}
	for k := 0; k < backends; k++ {
		tier = append(tier, 2)
	}
	frontend := func(i int) int { return clients + i }
	backend := func(i int) int { return clients + frontends + i }
	// Each client issues requests to a couple of frontends; each
	// frontend fans out to backends; backends respond to frontends.
	for c := 0; c < clients; c++ {
		for rep := 0; rep < 3; rep++ {
			f := (c + rep*3) % frontends
			t++
			b.AddTemporalEdge(c, frontend(f), 1, t)
			k := (c + rep) % backends
			t++
			b.AddTemporalEdge(frontend(f), backend(k), 1, t)
			t++
			b.AddTemporalEdge(backend(k), frontend(f), 1, t)
			t++
			b.AddTemporalEdge(frontend(f), c, 1, t)
		}
	}
	g := b.Build()
	fmt.Printf("request graph: %d nodes, %d timestamped edges\n", g.NumVertices(), g.NumEdges())

	// Time-respecting walks: each step must move strictly forward in
	// time, within a window of 40 ticks (requests that are close in
	// time belong to related flows).
	opts := v2v.DefaultOptions(16)
	opts.Strategy = v2v.TemporalWalk
	opts.TemporalWindow = 40
	opts.WalksPerVertex = 40
	opts.WalkLength = 20
	opts.Epochs = 8
	opts.Seed = 5
	emb, err := v2v.Embed(g, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("embedded with temporal walks: %d tokens, %v\n", emb.Tokens, emb.TrainTime)

	// The tiers should be recoverable from the embedding alone.
	acc, err := emb.CrossValidateLabels(tier, 3, 5, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("predicting the tier (client/frontend/backend) of a node: accuracy %.3f\n", acc)

	// Compare against plain (time-ignoring) uniform walks on the same
	// graph: the temporal constraint changes which contexts co-occur.
	opts.Strategy = v2v.UniformWalk
	plain, err := v2v.Embed(g, opts)
	if err != nil {
		log.Fatal(err)
	}
	accPlain, err := plain.CrossValidateLabels(tier, 3, 5, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("same prediction with non-temporal walks:              accuracy %.3f\n", accPlain)
	fmt.Println("\n(temporal walks restrict contexts to causally consistent request")
	fmt.Println("paths — the flexibility the paper's Section II-A motivates)")
}
