// Quickstart: embed a small graph with V2V and explore the embedding
// space — nearest neighbours, similarity, and a k-means community
// partition.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"v2v"
)

func main() {
	// Build the paper's synthetic benchmark at alpha = 0.5: ten
	// communities of 100 vertices (the "1000 vertices and 25000
	// edges" configuration of the paper's Section III).
	g, truth := v2v.CommunityBenchmark(v2v.DefaultBenchmarkConfig(0.5, 1))
	fmt.Printf("graph: %d vertices, %d edges, %d ground-truth communities\n",
		g.NumVertices(), g.NumEdges(), 10)

	// Embed each vertex as a 50-dimensional vector. DefaultOptions
	// uses a laptop-scale walk budget; the paper's defaults are
	// WalksPerVertex = WalkLength = 1000.
	opts := v2v.DefaultOptions(50)
	opts.Seed = 42
	emb, err := v2v.Embed(g, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("embedded %d vertices in %v (walks) + %v (training, %d tokens)\n",
		g.NumVertices(), emb.WalkTime, emb.TrainTime, emb.Tokens)

	// Nearest neighbours of vertex 0 should be other members of
	// community 0 (vertices 0-99).
	fmt.Println("\nnearest neighbours of vertex 0 (community 0):")
	for _, nb := range emb.Model.MostSimilar(0, 5) {
		fmt.Printf("  vertex %4d  community %d  cosine %.3f\n",
			nb.Word, truth[nb.Word], nb.Similarity)
	}

	// Cluster the embedding into 10 communities and score against
	// ground truth with the paper's pairwise precision/recall.
	res, err := emb.DetectCommunities(v2v.CommunityConfig{K: 10, Restarts: 100, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	p, r, err := v2v.EvaluateCommunities(truth, res.Partition)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncommunity detection: precision %.3f, recall %.3f (clustering took %v)\n",
		p, r, res.ClusterTime)
}
