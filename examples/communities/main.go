// Communities: the paper's headline experiment in miniature. Compare
// V2V community detection (clustering in the embedding space) with
// the direct graph algorithms CNM and Girvan-Newman on the synthetic
// benchmark, reporting accuracy and runtime side by side — the
// trade-off shown in the paper's Table I.
//
//	go run ./examples/communities
package main

import (
	"fmt"
	"log"
	"time"

	"v2v"
)

func main() {
	const k = 10
	fmt.Println("alpha   V2V(prec/rec, train, cluster)        CNM(prec/rec, time)      GN(prec/rec, time)")
	for _, alpha := range []float64{0.2, 0.5, 0.8} {
		// Half-size benchmark so Girvan-Newman finishes quickly; the
		// paper's full 1000-vertex runs take it hours.
		g, truth := v2v.CommunityBenchmark(v2v.BenchmarkConfig{
			NumCommunities: k, CommunitySize: 50, Alpha: alpha, InterEdges: 100, Seed: 3,
		})

		opts := v2v.DefaultOptions(10) // Table I uses 10 dimensions
		opts.Seed = 11
		emb, err := v2v.Embed(g, opts)
		if err != nil {
			log.Fatal(err)
		}
		res, err := emb.DetectCommunities(v2v.CommunityConfig{K: k, Restarts: 100, Seed: 5})
		if err != nil {
			log.Fatal(err)
		}
		vp, vr, _ := v2v.EvaluateCommunities(truth, res.Partition)

		cnmStart := time.Now()
		cnm, err := v2v.CNM(g, v2v.CNMConfig{TargetK: k})
		if err != nil {
			log.Fatal(err)
		}
		cnmTime := time.Since(cnmStart)
		cp, cr, _ := v2v.EvaluateCommunities(truth, cnm.Partition)

		gnStart := time.Now()
		gn, err := v2v.GirvanNewman(g, v2v.GNConfig{TargetK: k})
		if err != nil {
			log.Fatal(err)
		}
		gnTime := time.Since(gnStart)
		gp, gr, _ := v2v.EvaluateCommunities(truth, gn.Partition)

		fmt.Printf("%.1f     %.3f/%.3f %8v %9v      %.3f/%.3f %9v     %.3f/%.3f %9v\n",
			alpha,
			vp, vr, (emb.WalkTime + emb.TrainTime).Round(time.Millisecond), res.ClusterTime.Round(time.Microsecond),
			cp, cr, cnmTime.Round(time.Millisecond),
			gp, gr, gnTime.Round(time.Millisecond))
	}
	fmt.Println("\nThe paper's Table I trade-off: the graph algorithms are (near-)exact")
	fmt.Println("but their runtime grows steeply with edges; V2V pays a one-off")
	fmt.Println("training cost, after which clustering takes milliseconds.")
}
